package rmi

import (
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netsim"
	"repro/internal/security"
)

// errSuperseded marks the deliberate replacement of a transport epoch
// during reconnect — an administrative teardown, not a replica failure,
// so the OnEpochFail hook never sees it.
var errSuperseded = errors.New("rmi: connection superseded")

// HandshakeError is the server's explicit refusal of a connection
// handshake: the welcome frame arrived but carried an error instead of
// a session. Unlike a transport fault, the refusal text is the server
// speaking deliberately — authentication failure, codec policy, or the
// gateway's typed admission rejections (which internal/gateway
// classifies from Msg via Reason). Callers unwrap it with errors.As.
type HandshakeError struct{ Msg string }

// Error implements error.
func (e *HandshakeError) Error() string { return e.Msg }

// countingConn wraps a net.Conn and tracks bytes in each direction, so
// the client can compute per-call transfer sizes for the network
// emulator. After the pumps start, written is touched only by the writer
// goroutine and read only by the reader goroutine, so the per-frame
// deltas need no further synchronization.
type countingConn struct {
	net.Conn
	read, written int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// Client is a gocad user-side RPC endpoint: the stub layer of a remote
// component. A client owns one authenticated session with one provider
// server. The transport is multiplexed and pipelined: up to MaxInFlight
// calls can be on the wire concurrently, correlated back to their
// callers by frame ID, so concurrent Call/Go users share the connection
// instead of queueing stop-and-wait behind each other. MaxInFlight 1
// reproduces the classic serialized RMI behavior exactly.
//
// A client is resilient when configured with a Timeout (per-call
// deadline), a Retry policy (backoff for idempotent calls), and a Redial
// function (automatic reconnect + session re-handshake after a broken
// connection). A transport fault fails every call in flight on the
// multiplexed connection; each failed call retries independently under
// its own policy. When every attempt is exhausted the provider is
// declared dead: the call fails with an error wrapping ErrProviderDead
// and all further calls fail fast, letting the estimation layer degrade
// instead of hanging.
type Client struct {
	// Name is the client (IP user) identity presented to the provider.
	Name string
	// Profile is the emulated network environment; zero (InProcess)
	// means no injected delay. Each in-flight call sleeps its own
	// emulated round trip concurrently — overlapping, not summing — which
	// is how a real pipelined link behaves.
	Profile netsim.Profile
	// Meter, when non-nil, accumulates blocked-time accounting.
	Meter *netsim.Meter
	// Policy vets outbound payloads; nil uses security.DefaultPolicy.
	Policy *security.MarshalPolicy
	// Timeout bounds each call attempt's transport wait (send-queue wait,
	// write, and response read) and each reconnect handshake. Zero means
	// no deadline. A timed-out connection is in an undefined protocol
	// state and is abandoned — every call in flight on it fails; a
	// resilient client reconnects on the next attempt.
	Timeout time.Duration
	// Retry governs backoff retry of transport failures for idempotent
	// calls. The zero value disables retry.
	Retry RetryPolicy
	// Idempotent reports whether a method may safely be re-invoked after
	// an ambiguous transport failure (the request may or may not have
	// executed). nil treats every method as idempotent; callers with
	// non-idempotent methods must install a predicate (internal/iplib
	// provides one for the IP protocol).
	Idempotent func(method string) bool
	// Redial reopens the transport for automatic reconnect; nil disables
	// reconnection. Dial installs a TCP redialer automatically.
	Redial func() (net.Conn, error)
	// OnReconnect, when non-nil, replays application session state after
	// a successful re-handshake (the new server session starts empty —
	// bound instances are gone). It runs before the new connection
	// accepts pipelined calls; it must issue calls only through the
	// supplied do function, never through Call/Go.
	OnReconnect func(do func(method string, args PortData, reply any) error) error
	// Recorder, when non-nil, observes each successful call in exact
	// wire order. With pipelined calls completing out of order, a
	// sequence gate re-establishes send order before invoking the hook,
	// so the session-replay journal hanging off it stays a faithful wire
	// transcript. Replayed calls are not re-recorded.
	Recorder func(method string, args PortData, reply any)
	// MaxInFlight bounds how many calls may be in flight on the
	// connection at once: 0 selects DefaultInFlight, 1 serializes calls
	// (the legacy stop-and-wait behavior, and the determinism baseline).
	// Set it before issuing concurrent calls; it is read per call.
	MaxInFlight int
	// OnEpochFail, when non-nil, observes each genuine transport-epoch
	// failure — deliberate supersession during reconnect and client
	// Close are filtered out. It is the replica layer's breaker feed
	// (one penalty per poisoned epoch, however many calls it took
	// down). The hook runs on the failing goroutine with no client
	// locks held; it must not call back into the Client.
	OnEpochFail func(err error)
	// OnAttempt, when non-nil, observes every completed wire attempt:
	// the method, its measured round-trip time (send-queue wait through
	// response decode, before any emulated-profile padding), and the
	// outcome. Retried calls report once per attempt. The replica layer
	// uses it to feed per-replica EWMA latency.
	OnAttempt func(method string, rtt time.Duration, err error)

	key   security.Key // for session re-handshake on reconnect
	codec Codec        // wire framing, fixed at construction

	nextID atomic.Uint64 // call IDs; monotonic across transport epochs

	jmu    sync.Mutex // guards jitter (shared by emulation and backoff)
	jitter *mrand.Rand

	mu         sync.Mutex
	tr         *mux // current transport epoch; replaced whole on reconnect
	session    string
	closed     bool // Close was called; permanent
	dead       bool // retries + reconnects exhausted; permanent
	reconnects int

	// term closes when the client reaches a terminal state (Close or
	// provider declared dead), aborting any backoff sleep promptly.
	term     chan struct{}
	termOnce sync.Once
}

// Config carries the construction-time options of a client — the knobs
// that must be fixed before the handshake runs. Post-handshake knobs
// stay plain Client fields.
type Config struct {
	// Codec selects the wire framing; the zero value is the binary codec
	// (wire format v1). The server detects the codec per connection, so
	// no out-of-band agreement is needed.
	Codec Codec
}

// Dial connects to a provider server over TCP and authenticates with the
// shared key. The returned client can redial the same address, so
// setting Retry is enough to make it resilient.
func Dial(addr, clientName string, key security.Key) (*Client, error) {
	return DialWith(addr, clientName, key, Config{})
}

// DialWith is Dial with construction-time options.
func DialWith(addr, clientName string, key security.Key, cfg Config) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClientWith(conn, clientName, key, cfg)
	if err != nil {
		return nil, err
	}
	c.Redial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	return c, nil
}

// NewClient runs the handshake over an existing connection (net.Pipe for
// in-process loopback deployments, or any emulated transport) and starts
// the transport pumps.
func NewClient(conn net.Conn, clientName string, key security.Key) (*Client, error) {
	return NewClientWith(conn, clientName, key, Config{})
}

// NewClientWith is NewClient with construction-time options.
func NewClientWith(conn net.Conn, clientName string, key security.Key, cfg Config) (*Client, error) {
	c := &Client{
		Name:   clientName,
		key:    key,
		codec:  cfg.Codec,
		jitter: mrand.New(mrand.NewPCG(0x90cad, 0x1999)),
		term:   make(chan struct{}),
	}
	m, err := c.attach(conn)
	if err != nil {
		return nil, err
	}
	m.start()
	c.tr = m
	c.session = m.session
	return c, nil
}

// attach runs the authentication handshake over conn and returns the new
// transport epoch, pumps not yet started (reconnect interposes session
// replay first). On failure conn is closed and the previous transport
// state is untouched.
func (c *Client) attach(conn net.Conn) (*mux, error) {
	cc := &countingConn{Conn: conn}
	fw, fr := c.newFrameCodec(cc)
	if c.Timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		conn.Close()
		return nil, err
	}
	msg := append(append([]byte(nil), nonce...), c.Name...)
	hello := frame{Kind: kindHello, Client: c.Name, Nonce: nonce, Tag: c.key.Tag(msg)}
	if err := fw.writeFrame(&hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rmi: handshake send: %w", err)
	}
	var welcome frame
	if err := fr.readFrame(&welcome); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rmi: handshake receive: %w", err)
	}
	if welcome.Err != "" {
		conn.Close()
		return nil, &HandshakeError{Msg: welcome.Err}
	}
	if c.Timeout > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	return newMux(c, cc, fw, fr, welcome.Session), nil
}

// newFrameCodec builds the per-connection frame encoder/decoder pair for
// the client's codec. The binary reader may alias payloads into its
// reusable buffer: the mux reader decodes each response payload into the
// caller's reply synchronously, before reading the next frame.
func (c *Client) newFrameCodec(cc *countingConn) (frameEncoder, frameDecoder) {
	if c.codec == CodecGob {
		g := &gobFrameCodec{enc: gob.NewEncoder(cc), dec: gob.NewDecoder(cc)}
		return g, g
	}
	return &binFrameWriter{w: cc}, &binFrameReader{r: cc, aliasPayload: true}
}

// depth normalizes MaxInFlight to the effective in-flight bound.
func (c *Client) depth() int {
	if c.MaxInFlight <= 0 {
		return DefaultInFlight
	}
	return c.MaxInFlight
}

// nextCallID issues a request ID, monotonic across reconnects.
func (c *Client) nextCallID() uint64 { return c.nextID.Add(1) }

// Session returns the authenticated session identifier. It changes after
// an automatic reconnect (the provider opens a fresh session).
func (c *Client) Session() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Dead reports whether the provider has been declared dead (every retry
// and reconnect attempt exhausted).
func (c *Client) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Reconnects returns how many automatic reconnects have succeeded.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// PeakInFlight returns the high-water mark of concurrently in-flight
// calls on the current transport epoch — observability for tests and
// tuning (it resets on reconnect).
func (c *Client) PeakInFlight() int {
	c.mu.Lock()
	tr := c.tr
	c.mu.Unlock()
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.peak
}

// terminate signals terminal state (close or dead) to backoff sleepers.
func (c *Client) terminate() {
	c.termOnce.Do(func() { close(c.term) })
}

// Close shuts the connection down: every call in flight fails, and all
// future calls are rejected. A call sleeping in its retry backoff aborts
// promptly instead of waiting the ladder out.
func (c *Client) Close() error {
	c.mu.Lock()
	alreadyClosed := c.closed
	c.closed = true
	tr := c.tr
	c.mu.Unlock()
	c.terminate()
	if tr == nil || alreadyClosed {
		return nil
	}
	return tr.fail(errClientClosed)
}

// Call invokes a remote method synchronously: args is the request
// envelope (it must implement PortData for the marshalling policy),
// reply is a pointer to the response envelope. The emulated network
// delay for the call's actual byte volume is injected, and the total
// time blocked is metered.
func (c *Client) Call(method string, args PortData, reply any) error {
	return c.call(method, args, reply, true)
}

// call implements Call; meterBlocked distinguishes synchronous calls
// (whose wait stalls the caller and counts as blocked time) from
// nonblocking worker-goroutine calls (whose wait overlaps useful work —
// only the byte/call counters apply; any end-of-run drain is metered by
// the caller).
func (c *Client) call(method string, args PortData, reply any, meterBlocked bool) error {
	policy := c.Policy
	if policy == nil {
		policy = &security.DefaultPolicy
	}
	if err := checkOutbound(policy, args); err != nil {
		return err
	}
	payload, err := EncodePayload(args, c.codec)
	if err != nil {
		return err
	}

	start := time.Now()
	attempts := c.Retry.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.jmu.Lock()
			d := c.Retry.backoff(a, c.jitter)
			c.jmu.Unlock()
			if err := c.sleepBackoff(d, method); err != nil {
				return err
			}
		}
		sent, recvd, err := c.exchange(method, args, payload, reply)
		if err == nil {
			if c.Meter != nil {
				if meterBlocked {
					c.Meter.AddBlocked(time.Since(start))
				}
				c.Meter.AddCall(sent + recvd)
			}
			return nil
		}
		lastErr = err
		if !retryable(err) || !c.methodIdempotent(method) {
			return err
		}
	}
	if attempts > 1 {
		// A configured retry policy ran dry: declare the provider dead so
		// queued and future calls fail fast instead of re-walking the
		// whole backoff ladder.
		c.mu.Lock()
		if !c.closed {
			c.dead = true
		}
		dead := c.dead
		c.mu.Unlock()
		if dead {
			c.terminate()
		}
		return deadError(method, attempts, lastErr)
	}
	return lastErr
}

// sleepBackoff waits out one backoff delay, aborting promptly if the
// client reaches a terminal state (Close, or another call declaring the
// provider dead) — a closed client must not keep goroutines parked in
// the backoff ladder.
func (c *Client) sleepBackoff(d time.Duration, method string) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-c.term:
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.closed {
			return errClientClosed
		}
		return fmt.Errorf("rmi: %s: %w", method, ErrProviderDead)
	}
}

// methodIdempotent applies the Idempotent predicate (nil = all methods).
func (c *Client) methodIdempotent(method string) bool {
	return c.Idempotent == nil || c.Idempotent(method)
}

// transport returns a healthy transport epoch, reconnecting first if the
// previous one broke.
func (c *Client) transport(method string) (*mux, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errClientClosed
	}
	if c.dead {
		return nil, fmt.Errorf("rmi: %s: %w", method, ErrProviderDead)
	}
	if c.tr == nil || c.tr.broken() {
		if err := c.reconnectLocked(); err != nil {
			return nil, fmt.Errorf("rmi: reconnect: %w", err)
		}
	}
	return c.tr, nil
}

// exchange performs one wire attempt: acquire an in-flight slot, enqueue
// the request, wait for the correlated response, then sleep the emulated
// transfer delay for the call's actual byte volume. Concurrent in-flight
// calls each sleep their own delay — the emulation overlaps like a real
// pipelined link instead of summing under a transport lock.
func (c *Client) exchange(method string, args PortData, payload []byte, reply any) (sent, recvd int, err error) {
	m, err := c.transport(method)
	if err != nil {
		return 0, 0, err
	}
	if err := m.acquire(); err != nil {
		return 0, 0, fmt.Errorf("rmi: %s: %w", method, err)
	}
	defer m.release()
	pc, err := m.enqueue(method, args, payload, reply)
	if err != nil {
		return 0, 0, err
	}
	wireStart := time.Now()
	<-pc.done
	sent, recvd = int(pc.sent.Load()), int(pc.recvd.Load())
	if h := c.OnAttempt; h != nil {
		h(method, time.Since(wireStart), pc.err)
	}
	if pc.err != nil {
		return sent, recvd, pc.err
	}
	// The slot is held through the emulated delay: at depth 1 queued
	// calls wait out the full round trip behind this one (the serialized
	// RMI link of the paper), at depth N the sleeps overlap. netsim.Wait
	// rather than time.Sleep: the runtime rounds sub-millisecond sleeps
	// up to its timer granularity, which would inflate the Local
	// profile's ~100µs round trips by 10×.
	if delay := c.emulatedDelay(sent, recvd); delay > 0 {
		netsim.Wait(delay)
	}
	return sent, recvd, nil
}

// emulatedDelay computes this call's injected round-trip time, drawing
// jitter from the client's seeded source.
func (c *Client) emulatedDelay(sent, recvd int) time.Duration {
	p := c.Profile
	if p.OneWay == 0 && p.PerKB == 0 && p.Jitter == 0 {
		return 0
	}
	c.jmu.Lock()
	defer c.jmu.Unlock()
	var jr *mrand.Rand
	if p.Jitter > 0 {
		jr = c.jitter
	}
	return p.EmulatedRoundTrip(sent, recvd, jr)
}

// reconnectLocked redials the transport, re-runs the authentication
// handshake (opening a fresh provider session), and replays application
// session state through OnReconnect — serially, on the bare connection,
// before the new epoch accepts pipelined traffic. The caller holds c.mu.
func (c *Client) reconnectLocked() error {
	if c.Redial == nil {
		return errors.New("rmi: connection broken")
	}
	if c.tr != nil {
		// Idempotent if the epoch already failed; otherwise this fails
		// any stragglers and closes the old conn. errSuperseded is
		// filtered from the OnEpochFail hook: replacement is not a
		// replica failure.
		_ = c.tr.fail(errSuperseded)
	}
	conn, err := c.Redial()
	if err != nil {
		return err
	}
	m, err := c.attach(conn)
	if err != nil {
		return err
	}
	c.reconnects++
	c.session = m.session
	if c.OnReconnect != nil {
		if err := c.OnReconnect(m.directCall); err != nil {
			_ = m.fail(errors.New("rmi: session replay failed"))
			return fmt.Errorf("session replay: %w", err)
		}
	}
	m.start()
	c.tr = m
	return nil
}

// Pending is an in-flight asynchronous call.
type Pending struct {
	// Done is closed when the call completes.
	Done chan struct{}
	err  error
}

// Err returns the call's outcome; it must be read after Done closes.
func (p *Pending) Err() error { return p.err }

// Go invokes a remote method asynchronously — the nonblocking estimation
// of the paper ("gate-level simulation runs are nonblocking; they use a
// new thread"). The reply must not be touched until Done closes.
// Concurrent Go calls pipeline on the shared connection up to
// MaxInFlight deep.
func (c *Client) Go(method string, args PortData, reply any) *Pending {
	p := &Pending{Done: make(chan struct{})}
	go func() {
		defer close(p.Done)
		p.err = c.call(method, args, reply, false)
	}()
	return p
}

// emulatedRoundTrip computes the injected delay; split out for testing.
func emulatedRoundTrip(profile netsim.Profile, sent, recvd int, jr *mrand.Rand) time.Duration {
	return profile.EmulatedRoundTrip(sent, recvd, jr)
}
