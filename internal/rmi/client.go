package rmi

import (
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"net"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/security"
)

// countingConn wraps a net.Conn and tracks bytes in each direction, so
// the client can compute per-call transfer sizes for the network
// emulator.
type countingConn struct {
	net.Conn
	read, written int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// Client is a gocad user-side RPC endpoint: the stub layer of a remote
// component. A client owns one authenticated session with one provider
// server. Calls are serialized (one outstanding request per connection,
// as in classic RMI); nonblocking use runs Go on worker goroutines.
type Client struct {
	// Name is the client (IP user) identity presented to the provider.
	Name string
	// Profile is the emulated network environment; zero (InProcess)
	// means no injected delay.
	Profile netsim.Profile
	// Meter, when non-nil, accumulates blocked-time accounting.
	Meter *netsim.Meter
	// Policy vets outbound payloads; nil uses security.DefaultPolicy.
	Policy *security.MarshalPolicy
	// Timeout bounds each call's transport wait (write + response read).
	// Zero means no deadline. A timed-out connection is left in an
	// undefined protocol state and is closed.
	Timeout time.Duration

	mu      sync.Mutex
	conn    *countingConn
	enc     *gob.Encoder
	dec     *gob.Decoder
	session string
	nextID  uint64
	jitter  *mrand.Rand
	closed  bool
}

// Dial connects to a provider server over TCP and authenticates with the
// shared key.
func Dial(addr, clientName string, key security.Key) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, clientName, key)
}

// NewClient runs the handshake over an existing connection (net.Pipe for
// in-process loopback deployments, or any emulated transport).
func NewClient(conn net.Conn, clientName string, key security.Key) (*Client, error) {
	cc := &countingConn{Conn: conn}
	c := &Client{
		Name:   clientName,
		conn:   cc,
		enc:    gob.NewEncoder(cc),
		dec:    gob.NewDecoder(cc),
		jitter: mrand.New(mrand.NewPCG(0x90cad, 0x1999)),
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		conn.Close()
		return nil, err
	}
	msg := append(append([]byte(nil), nonce...), clientName...)
	hello := frame{Kind: kindHello, Client: clientName, Nonce: nonce, Tag: key.Tag(msg)}
	if err := c.enc.Encode(&hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rmi: handshake send: %w", err)
	}
	var welcome frame
	if err := c.dec.Decode(&welcome); err != nil {
		conn.Close()
		return nil, fmt.Errorf("rmi: handshake receive: %w", err)
	}
	if welcome.Err != "" {
		conn.Close()
		return nil, errors.New(welcome.Err)
	}
	c.session = welcome.Session
	return c, nil
}

// Session returns the authenticated session identifier.
func (c *Client) Session() string { return c.session }

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeLocked()
}

// closeLocked marks the client dead and closes the transport; the caller
// holds c.mu. A failed or timed-out call leaves the gob stream in an
// undefined state, so the connection cannot be reused.
func (c *Client) closeLocked() error {
	c.closed = true
	return c.conn.Close()
}

// Call invokes a remote method synchronously: args is the request
// envelope (it must implement PortData for the marshalling policy),
// reply is a pointer to the response envelope. The emulated network
// delay for the call's actual byte volume is injected, and the total
// time blocked is metered.
func (c *Client) Call(method string, args PortData, reply any) error {
	return c.call(method, args, reply, true)
}

// call implements Call; meterBlocked distinguishes synchronous calls
// (whose wait stalls the caller and counts as blocked time) from
// nonblocking worker-goroutine calls (whose wait overlaps useful work —
// only the byte/call counters apply; any end-of-run drain is metered by
// the caller).
func (c *Client) call(method string, args PortData, reply any, meterBlocked bool) error {
	policy := c.Policy
	if policy == nil {
		policy = &security.DefaultPolicy
	}
	for _, v := range args.PortData() {
		if err := policy.CheckOutbound(v); err != nil {
			return err
		}
	}
	payload, err := Encode(args)
	if err != nil {
		return err
	}

	start := time.Now()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("rmi: client closed")
	}
	c.nextID++
	req := frame{Kind: kindRequest, ID: c.nextID, Session: c.session, Method: method, Payload: payload}
	w0, r0 := c.conn.written, c.conn.read
	if c.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	if err := c.enc.Encode(&req); err != nil {
		c.closeLocked()
		c.mu.Unlock()
		return fmt.Errorf("rmi: send %s: %w", method, err)
	}
	var resp frame
	if err := c.dec.Decode(&resp); err != nil {
		c.closeLocked()
		c.mu.Unlock()
		return fmt.Errorf("rmi: receive %s: %w", method, err)
	}
	if c.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
	sent := int(c.conn.written - w0)
	recvd := int(c.conn.read - r0)
	var jr *mrand.Rand
	if c.Profile.Jitter > 0 {
		jr = c.jitter
	}
	// Inject the emulated transfer time for this call's byte volume
	// while still holding the connection: on a real serialized RMI link
	// the response only arrives after the round trip, so queued calls
	// must wait behind it rather than pipeline through the emulation.
	delay := emulatedRoundTrip(c.Profile, sent, recvd, jr)
	if delay > 0 {
		time.Sleep(delay)
	}
	c.mu.Unlock()
	if c.Meter != nil {
		if meterBlocked {
			c.Meter.AddBlocked(time.Since(start))
		}
		c.Meter.AddCall(sent + recvd)
	}

	if resp.ID != req.ID {
		return fmt.Errorf("rmi: response id %d for request %d", resp.ID, req.ID)
	}
	if resp.Err != "" {
		return &RemoteError{Method: method, Msg: resp.Err}
	}
	if reply == nil {
		return nil
	}
	return Decode(resp.Payload, reply)
}

// Pending is an in-flight asynchronous call.
type Pending struct {
	// Done is closed when the call completes.
	Done chan struct{}
	err  error
}

// Err returns the call's outcome; it must be read after Done closes.
func (p *Pending) Err() error { return p.err }

// Go invokes a remote method asynchronously — the nonblocking estimation
// of the paper ("gate-level simulation runs are nonblocking; they use a
// new thread"). The reply must not be touched until Done closes.
func (c *Client) Go(method string, args PortData, reply any) *Pending {
	p := &Pending{Done: make(chan struct{})}
	go func() {
		defer close(p.Done)
		p.err = c.call(method, args, reply, false)
	}()
	return p
}

// emulatedRoundTrip computes the injected delay; split out for testing.
func emulatedRoundTrip(profile netsim.Profile, sent, recvd int, jr *mrand.Rand) time.Duration {
	if profile.OneWay == 0 && profile.PerKB == 0 && profile.Jitter == 0 {
		return 0
	}
	d := profile.Delay(sent, nil) + profile.Delay(recvd, nil)
	if profile.Jitter > 0 && jr != nil {
		d += time.Duration(jr.Int64N(int64(profile.Jitter)))
		d += time.Duration(jr.Int64N(int64(profile.Jitter)))
	}
	return d
}
