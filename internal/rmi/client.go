package rmi

import (
	"crypto/rand"
	"encoding/gob"
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"net"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/security"
)

// countingConn wraps a net.Conn and tracks bytes in each direction, so
// the client can compute per-call transfer sizes for the network
// emulator.
type countingConn struct {
	net.Conn
	read, written int64
}

func (c *countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.read += int64(n)
	return n, err
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.written += int64(n)
	return n, err
}

// Client is a gocad user-side RPC endpoint: the stub layer of a remote
// component. A client owns one authenticated session with one provider
// server. Calls are serialized (one outstanding request per connection,
// as in classic RMI); nonblocking use runs Go on worker goroutines.
//
// A client is resilient when configured with a Timeout (per-call
// deadline), a Retry policy (backoff for idempotent calls), and a Redial
// function (automatic reconnect + session re-handshake after a broken
// connection). When every attempt is exhausted the provider is declared
// dead: the call fails with an error wrapping ErrProviderDead and all
// further calls fail fast, letting the estimation layer degrade instead
// of hanging.
type Client struct {
	// Name is the client (IP user) identity presented to the provider.
	Name string
	// Profile is the emulated network environment; zero (InProcess)
	// means no injected delay.
	Profile netsim.Profile
	// Meter, when non-nil, accumulates blocked-time accounting.
	Meter *netsim.Meter
	// Policy vets outbound payloads; nil uses security.DefaultPolicy.
	Policy *security.MarshalPolicy
	// Timeout bounds each call attempt's transport wait (write +
	// response read) and each reconnect handshake. Zero means no
	// deadline. A timed-out connection is in an undefined protocol state
	// and is abandoned; a resilient client reconnects on the next
	// attempt.
	Timeout time.Duration
	// Retry governs backoff retry of transport failures for idempotent
	// calls. The zero value disables retry.
	Retry RetryPolicy
	// Idempotent reports whether a method may safely be re-invoked after
	// an ambiguous transport failure (the request may or may not have
	// executed). nil treats every method as idempotent; callers with
	// non-idempotent methods must install a predicate (internal/iplib
	// provides one for the IP protocol).
	Idempotent func(method string) bool
	// Redial reopens the transport for automatic reconnect; nil disables
	// reconnection. Dial installs a TCP redialer automatically.
	Redial func() (net.Conn, error)
	// OnReconnect, when non-nil, replays application session state after
	// a successful re-handshake (the new server session starts empty —
	// bound instances are gone). It runs with the connection locked; it
	// must issue calls only through the supplied do function, never
	// through Call/Go.
	OnReconnect func(do func(method string, args PortData, reply any) error) error
	// Recorder, when non-nil, observes each successful call in exact
	// wire order (it runs under the connection lock). The session-replay
	// journal hangs off this hook. Replayed calls are not re-recorded.
	Recorder func(method string, args PortData, reply any)

	key security.Key // for session re-handshake on reconnect

	mu         sync.Mutex
	conn       *countingConn
	enc        *gob.Encoder
	dec        *gob.Decoder
	session    string
	nextID     uint64
	jitter     *mrand.Rand
	closed     bool // Close was called; permanent
	broken     bool // transport failed mid-stream; reconnectable
	dead       bool // retries + reconnects exhausted; permanent
	reconnects int
}

// Dial connects to a provider server over TCP and authenticates with the
// shared key. The returned client can redial the same address, so
// setting Retry is enough to make it resilient.
func Dial(addr, clientName string, key security.Key) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, clientName, key)
	if err != nil {
		return nil, err
	}
	c.Redial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	return c, nil
}

// NewClient runs the handshake over an existing connection (net.Pipe for
// in-process loopback deployments, or any emulated transport).
func NewClient(conn net.Conn, clientName string, key security.Key) (*Client, error) {
	c := &Client{
		Name:   clientName,
		key:    key,
		jitter: mrand.New(mrand.NewPCG(0x90cad, 0x1999)),
	}
	if err := c.attach(conn); err != nil {
		return nil, err
	}
	return c, nil
}

// attach runs the authentication handshake over conn and installs it as
// the client's transport. The caller holds c.mu (or the client is not
// yet shared). On failure conn is closed and the previous transport
// state is untouched.
func (c *Client) attach(conn net.Conn) error {
	cc := &countingConn{Conn: conn}
	enc := gob.NewEncoder(cc)
	dec := gob.NewDecoder(cc)
	if c.Timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	nonce := make([]byte, 16)
	if _, err := rand.Read(nonce); err != nil {
		conn.Close()
		return err
	}
	msg := append(append([]byte(nil), nonce...), c.Name...)
	hello := frame{Kind: kindHello, Client: c.Name, Nonce: nonce, Tag: c.key.Tag(msg)}
	if err := enc.Encode(&hello); err != nil {
		conn.Close()
		return fmt.Errorf("rmi: handshake send: %w", err)
	}
	var welcome frame
	if err := dec.Decode(&welcome); err != nil {
		conn.Close()
		return fmt.Errorf("rmi: handshake receive: %w", err)
	}
	if welcome.Err != "" {
		conn.Close()
		return errors.New(welcome.Err)
	}
	if c.Timeout > 0 {
		_ = conn.SetDeadline(time.Time{})
	}
	c.conn, c.enc, c.dec = cc, enc, dec
	c.session = welcome.Session
	c.broken = false
	return nil
}

// Session returns the authenticated session identifier. It changes after
// an automatic reconnect (the provider opens a fresh session).
func (c *Client) Session() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.session
}

// Dead reports whether the provider has been declared dead (every retry
// and reconnect attempt exhausted).
func (c *Client) Dead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dead
}

// Reconnects returns how many automatic reconnects have succeeded.
func (c *Client) Reconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Close shuts the connection down.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closeLocked()
}

// closeLocked marks the client permanently closed and closes the
// transport; the caller holds c.mu.
func (c *Client) closeLocked() error {
	c.closed = true
	if c.conn == nil {
		return nil
	}
	return c.conn.Close()
}

// breakLocked abandons the transport after a mid-stream failure: the gob
// stream is in an undefined state (a partial frame, or a stale response
// that would desynchronize request/response matching), so the connection
// cannot be reused. A resilient client reconnects on the next attempt.
func (c *Client) breakLocked() {
	c.broken = true
	if c.conn != nil {
		c.conn.Close()
	}
}

// Call invokes a remote method synchronously: args is the request
// envelope (it must implement PortData for the marshalling policy),
// reply is a pointer to the response envelope. The emulated network
// delay for the call's actual byte volume is injected, and the total
// time blocked is metered.
func (c *Client) Call(method string, args PortData, reply any) error {
	return c.call(method, args, reply, true)
}

// call implements Call; meterBlocked distinguishes synchronous calls
// (whose wait stalls the caller and counts as blocked time) from
// nonblocking worker-goroutine calls (whose wait overlaps useful work —
// only the byte/call counters apply; any end-of-run drain is metered by
// the caller).
func (c *Client) call(method string, args PortData, reply any, meterBlocked bool) error {
	policy := c.Policy
	if policy == nil {
		policy = &security.DefaultPolicy
	}
	for _, v := range args.PortData() {
		if err := policy.CheckOutbound(v); err != nil {
			return err
		}
	}
	payload, err := Encode(args)
	if err != nil {
		return err
	}

	start := time.Now()
	attempts := c.Retry.attempts()
	var lastErr error
	for a := 0; a < attempts; a++ {
		if a > 0 {
			c.mu.Lock()
			d := c.Retry.backoff(a, c.jitter)
			c.mu.Unlock()
			if d > 0 {
				time.Sleep(d)
			}
		}
		sent, recvd, err := c.exchange(method, args, payload, reply)
		if err == nil {
			if c.Meter != nil {
				if meterBlocked {
					c.Meter.AddBlocked(time.Since(start))
				}
				c.Meter.AddCall(sent + recvd)
			}
			return nil
		}
		lastErr = err
		if !retryable(err) || !c.methodIdempotent(method) {
			return err
		}
	}
	if attempts > 1 {
		// A configured retry policy ran dry: declare the provider dead so
		// queued and future calls fail fast instead of re-walking the
		// whole backoff ladder.
		c.mu.Lock()
		if !c.closed {
			c.dead = true
		}
		c.mu.Unlock()
		return deadError(method, attempts, lastErr)
	}
	return lastErr
}

// methodIdempotent applies the Idempotent predicate (nil = all methods).
func (c *Client) methodIdempotent(method string) bool {
	return c.Idempotent == nil || c.Idempotent(method)
}

// exchange performs one wire attempt: reconnecting first if the previous
// transport broke, then running one request/response round trip.
func (c *Client) exchange(method string, args PortData, payload []byte, reply any) (sent, recvd int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, 0, errClientClosed
	}
	if c.dead {
		return 0, 0, fmt.Errorf("rmi: %s: %w", method, ErrProviderDead)
	}
	if c.broken {
		if err := c.reconnectLocked(); err != nil {
			return 0, 0, fmt.Errorf("rmi: reconnect: %w", err)
		}
	}
	sent, recvd, err = c.wireExchange(method, payload, reply, true)
	if err != nil {
		return sent, recvd, err
	}
	if c.Recorder != nil {
		c.Recorder(method, args, reply)
	}
	return sent, recvd, nil
}

// wireExchange runs one request/response round trip on the current
// transport; the caller holds c.mu. emulate selects injected-delay
// emulation (session replay skips it: recovery overhead is not part of
// the workload's traffic accounting).
func (c *Client) wireExchange(method string, payload []byte, reply any, emulate bool) (sent, recvd int, err error) {
	c.nextID++
	req := frame{Kind: kindRequest, ID: c.nextID, Session: c.session, Method: method, Payload: payload}
	w0, r0 := c.conn.written, c.conn.read
	if c.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	if err := c.enc.Encode(&req); err != nil {
		c.breakLocked()
		return 0, 0, fmt.Errorf("rmi: send %s: %w", method, err)
	}
	var resp frame
	if err := c.dec.Decode(&resp); err != nil {
		c.breakLocked()
		return int(c.conn.written - w0), int(c.conn.read - r0), fmt.Errorf("rmi: receive %s: %w", method, err)
	}
	if c.Timeout > 0 {
		_ = c.conn.SetDeadline(time.Time{})
	}
	sent = int(c.conn.written - w0)
	recvd = int(c.conn.read - r0)
	if emulate {
		var jr *mrand.Rand
		if c.Profile.Jitter > 0 {
			jr = c.jitter
		}
		// Inject the emulated transfer time for this call's byte volume
		// while still holding the connection: on a real serialized RMI
		// link the response only arrives after the round trip, so queued
		// calls must wait behind it rather than pipeline through the
		// emulation.
		if delay := emulatedRoundTrip(c.Profile, sent, recvd, jr); delay > 0 {
			time.Sleep(delay)
		}
	}
	if resp.ID != req.ID {
		// A stale frame (e.g. the response to an earlier failed call) is
		// in the stream: request/response matching is desynchronized and
		// the connection is poisoned.
		c.breakLocked()
		return sent, recvd, fmt.Errorf("rmi: %s: response id %d for request %d (stream desynchronized)", method, resp.ID, req.ID)
	}
	if resp.Err != "" {
		return sent, recvd, &RemoteError{Method: method, Msg: resp.Err}
	}
	if reply == nil {
		return sent, recvd, nil
	}
	if err := Decode(resp.Payload, reply); err != nil {
		// The frame arrived intact; re-executing the method would return
		// the same undecodable payload.
		return sent, recvd, &permanentError{err: err}
	}
	return sent, recvd, nil
}

// reconnectLocked redials the transport, re-runs the authentication
// handshake (opening a fresh provider session), and replays application
// session state through OnReconnect. The caller holds c.mu.
func (c *Client) reconnectLocked() error {
	if c.Redial == nil {
		return errors.New("rmi: connection broken")
	}
	if c.conn != nil {
		c.conn.Close()
	}
	conn, err := c.Redial()
	if err != nil {
		return err
	}
	if err := c.attach(conn); err != nil {
		return err
	}
	c.reconnects++
	if c.OnReconnect != nil {
		if err := c.OnReconnect(c.replayCallLocked); err != nil {
			c.breakLocked()
			return fmt.Errorf("session replay: %w", err)
		}
	}
	return nil
}

// replayCallLocked is the restricted call surface handed to OnReconnect:
// one round trip on the freshly attached connection, without emulation,
// metering, or re-recording. The caller (reconnectLocked) holds c.mu.
func (c *Client) replayCallLocked(method string, args PortData, reply any) error {
	payload, err := Encode(args)
	if err != nil {
		return err
	}
	_, _, err = c.wireExchange(method, payload, reply, false)
	return err
}

// Pending is an in-flight asynchronous call.
type Pending struct {
	// Done is closed when the call completes.
	Done chan struct{}
	err  error
}

// Err returns the call's outcome; it must be read after Done closes.
func (p *Pending) Err() error { return p.err }

// Go invokes a remote method asynchronously — the nonblocking estimation
// of the paper ("gate-level simulation runs are nonblocking; they use a
// new thread"). The reply must not be touched until Done closes.
func (c *Client) Go(method string, args PortData, reply any) *Pending {
	p := &Pending{Done: make(chan struct{})}
	go func() {
		defer close(p.Done)
		p.err = c.call(method, args, reply, false)
	}()
	return p
}

// emulatedRoundTrip computes the injected delay; split out for testing.
func emulatedRoundTrip(profile netsim.Profile, sent, recvd int, jr *mrand.Rand) time.Duration {
	if profile.OneWay == 0 && profile.PerKB == 0 && profile.Jitter == 0 {
		return 0
	}
	d := profile.Delay(sent, nil) + profile.Delay(recvd, nil)
	if profile.Jitter > 0 && jr != nil {
		d += time.Duration(jr.Int64N(int64(profile.Jitter)))
		d += time.Duration(jr.Int64N(int64(profile.Jitter)))
	}
	return d
}
