package rmi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
)

// This file is the codec-parameterized poisoning matrix: every
// protocol-level fault that must poison the mux epoch — wrong frame
// kind, unknown response ID, mid-frame truncation — runs under both the
// binary and the gob codec, and the client must heal through journal
// replay identically. The matrix reuses the rogue-server scripts from
// resilience_test.go, which sniff the codec per connection.

// rogueWrongKind answers the first request with a correctly-correlated
// ID but a nonsense frame kind — a confused peer rather than a
// desynchronized stream. The mux must poison the epoch anyway.
func rogueWrongKind(conn net.Conn, fw frameEncoder, fr frameDecoder, requests *atomic.Int32) {
	var req frame
	if fr.readFrame(&req) != nil {
		return
	}
	requests.Add(1)
	fw.writeFrame(&frame{Kind: kindHello, ID: req.ID})
}

// rogueTruncateMidFrame reads one request, writes exactly half of a
// valid response frame's raw bytes, and slams the connection shut. The
// client's reader sees a short read inside a frame; the epoch must
// poison and heal exactly as for a whole-frame loss.
func rogueTruncateMidFrame(codec Codec) rogueBehavior {
	return func(conn net.Conn, fw frameEncoder, fr frameDecoder, requests *atomic.Int32) {
		var req frame
		if fr.readFrame(&req) != nil {
			return
		}
		requests.Add(1)
		resp := frame{Kind: kindResponse, ID: req.ID, Payload: []byte("half-delivered response body")}
		var raw []byte
		if codec == CodecGob {
			var buf bytes.Buffer
			if gob.NewEncoder(&buf).Encode(&resp) != nil {
				return
			}
			raw = buf.Bytes()
		} else {
			var err error
			if raw, err = appendFrame(nil, &resp); err != nil {
				return
			}
		}
		conn.Write(raw[:len(raw)/2])
		conn.Close()
	}
}

// TestMuxPoisonMatrix runs the poison-and-heal contract across
// codec × fault. With retry armed, the faulted call must succeed on a
// fresh epoch (connection 2 of the rogue server echoes correctly), the
// client must record exactly one reconnect, and follow-up calls must
// stay aligned — no cross-call data, no stale frames surfacing later.
func TestMuxPoisonMatrix(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		faults := []struct {
			name   string
			behave rogueBehavior
		}{
			{"wrong-kind", rogueWrongKind},
			{"unknown-id", rogueStaleID},
			{"mid-frame-truncation", rogueTruncateMidFrame(codec)},
		}
		for _, fault := range faults {
			t.Run(fmt.Sprintf("%s/%s", codec, fault.name), func(t *testing.T) {
				r := startRogue(t, fault.behave)
				cli := rogueClientCodec(t, r, codec)
				cli.Retry = fastRetry
				if err := cli.Call("m", echoReq{Note: "poison"}, nil); err != nil {
					t.Fatalf("%v under %v not healed: %v", fault.name, codec, err)
				}
				if got := cli.Reconnects(); got != 1 {
					t.Errorf("reconnects = %d, want 1 (fault must poison the epoch exactly once)", got)
				}
				if cli.Dead() {
					t.Error("healed client declared dead")
				}
				for i := 0; i < 5; i++ {
					if err := cli.Call("m", echoReq{}, nil); err != nil {
						t.Fatalf("post-heal call %d under %v: %v", i, codec, err)
					}
				}
			})
		}
	}
}

// TestMuxPoisonSurfacesWithoutRetry is the no-retry half of the matrix:
// with replay disabled the poison fault must reach the caller as an
// error (never a hang, never another call's data), and the next call
// must run on a fresh epoch rather than reuse the poisoned stream.
func TestMuxPoisonSurfacesWithoutRetry(t *testing.T) {
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		faults := []struct {
			name    string
			behave  rogueBehavior
			errWant string
		}{
			{"wrong-kind", rogueWrongKind, "desynchronized"},
			{"unknown-id", rogueStaleID, "desynchronized"},
			{"mid-frame-truncation", rogueTruncateMidFrame(codec), "receive"},
		}
		for _, fault := range faults {
			t.Run(fmt.Sprintf("%s/%s", codec, fault.name), func(t *testing.T) {
				r := startRogue(t, fault.behave)
				cli := rogueClientCodec(t, r, codec)
				cli.Retry = RetryPolicy{}
				err := cli.Call("m", echoReq{}, nil)
				if err == nil || !strings.Contains(err.Error(), fault.errWant) {
					t.Fatalf("err = %v, want %q fault surfaced", err, fault.errWant)
				}
				cli.Retry = fastRetry
				if err := cli.Call("m", echoReq{}, nil); err != nil {
					t.Fatalf("follow-up call on fresh epoch: %v", err)
				}
			})
		}
	}
}

// parityFrames covers every frame kind and the edge shapes of each
// section: absent fields, empty-but-present slices, huge IDs, non-ASCII
// and NUL-bearing strings, and a payload large enough to cross several
// varint length boundaries.
func parityFrames() []frame {
	big := bytes.Repeat([]byte{0xA5, 0x00, 0xFF}, 7001)
	return []frame{
		{Kind: kindHello, Client: "user", Nonce: []byte{1, 2, 3}, Tag: "mac"},
		{Kind: kindWelcome, Session: "s-1"},
		{Kind: kindRequest, ID: 1, Session: "s-1", Method: "eval", Payload: []byte{0x00, 0x01}},
		{Kind: kindRequest, ID: 1<<64 - 1, Session: "s", Method: strings.Repeat("m", 300), Payload: big},
		{Kind: kindResponse, ID: 7, Payload: []byte("ok")},
		{Kind: kindResponse, ID: 8, Err: "remote: boom\x00trailer — ünïcode"},
		{Kind: kindResponse},
		{Kind: kindRequest, ID: 2, Session: "s-1", Method: "eval", Payload: []byte{}},
	}
}

// TestFrameCodecParity proves the two framings are semantically
// interchangeable: every sample frame encoded through the binary writer
// and through gob decodes to identical field values. This is the
// migration guarantee — a frame's meaning does not depend on which
// codec carried it.
func TestFrameCodecParity(t *testing.T) {
	for i, f := range parityFrames() {
		f := f
		t.Run(fmt.Sprintf("frame-%d", i), func(t *testing.T) {
			raw, err := appendFrame(nil, &f)
			if err != nil {
				t.Fatal(err)
			}
			br := &binFrameReader{r: bytes.NewReader(raw)}
			var viaBin frame
			if err := br.readFrame(&viaBin); err != nil {
				t.Fatalf("binary decode: %v", err)
			}

			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(&f); err != nil {
				t.Fatal(err)
			}
			g := &gobFrameCodec{dec: gob.NewDecoder(&buf)}
			var viaGob frame
			if err := g.readFrame(&viaGob); err != nil {
				t.Fatalf("gob decode: %v", err)
			}

			if !reflect.DeepEqual(viaBin, viaGob) {
				t.Errorf("codecs disagree:\nbin: %#v\ngob: %#v", viaBin, viaGob)
			}
		})
	}
}

// TestBinaryFrameGoldenSize pins the exact binary encoding size: header
// (8) + uvarint(ID) + seven uvarint-prefixed sections. A size change is
// a wire format change and must come with a version bump (DESIGN.md
// §12).
func TestBinaryFrameGoldenSize(t *testing.T) {
	uvlen := func(v uint64) int {
		n := 1
		for v >= 0x80 {
			v >>= 7
			n++
		}
		return n
	}
	sec := func(n int) int { return uvlen(uint64(n)) + n }
	for i, f := range parityFrames() {
		raw, err := appendFrame(nil, &f)
		if err != nil {
			t.Fatal(err)
		}
		want := binHeaderLen + uvlen(f.ID) +
			sec(len(f.Session)) + sec(len(f.Method)) + sec(len(f.Payload)) +
			sec(len(f.Err)) + sec(len(f.Client)) + sec(len(f.Nonce)) + sec(len(f.Tag))
		if len(raw) != want {
			t.Errorf("frame-%d: encoded %d bytes, want %d", i, len(raw), want)
		}
	}
}
