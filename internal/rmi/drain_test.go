package rmi

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/security"
)

// newDrainPair starts a TCP server with a "slow" handler that signals
// entry and then blocks until released (or for its sleep), plus the
// standard echo; it returns the server, a connected client, and the
// bound address for post-drain dial probes.
func newDrainPair(t *testing.T, workers int, entered chan struct{}, hold time.Duration) (*Server, *Client, string) {
	t.Helper()
	srv := NewServer("prov")
	srv.SessionWorkers = workers
	key, err := security.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	srv.Authorize("user", key)
	srv.Handle("echo", func(sess *Session, payload []byte) (any, error) {
		var req echoReq
		if err := Decode(payload, &req); err != nil {
			return nil, err
		}
		return echoResp{Bits: req.Bits}, nil
	})
	srv.HandleOrdered("slow", func(sess *Session, payload []byte) (any, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		time.Sleep(hold)
		return echoResp{Calls: 1}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(addr, "user", key)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli, addr
}

// TestDrainFinishesInFlightBatch is the drain contract: a batch already
// executing when drain starts completes and its response reaches the
// client — the epoch is never poisoned mid-batch — while the listener
// refuses new sessions.
func TestDrainFinishesInFlightBatch(t *testing.T) {
	for _, workers := range []int{1, 4} {
		name := "serial"
		if workers > 1 {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			leakcheck.Check(t)
			entered := make(chan struct{}, 1)
			srv, cli, addr := newDrainPair(t, workers, entered, 100*time.Millisecond)

			pending := cli.Go("slow", echoReq{}, &echoResp{})
			select {
			case <-entered:
			case <-time.After(5 * time.Second):
				t.Fatal("slow handler never entered")
			}

			if err := srv.Drain(5 * time.Second); err != nil {
				t.Fatalf("drain: %v", err)
			}
			<-pending.Done
			if err := pending.Err(); err != nil {
				t.Fatalf("in-flight batch poisoned by drain: %v", err)
			}

			// The listener is down: no new sessions.
			if _, err := Dial(addr, "user", security.Key("k")); err == nil {
				t.Fatal("draining server accepted a new session")
			}
		})
	}
}

// TestDrainTimeoutForceCloses bounds the wait: a handler that outlives
// -drain-timeout is cut off, reported in Drain's error, and the caller
// sees a transport fault rather than a hang.
func TestDrainTimeoutForceCloses(t *testing.T) {
	leakcheck.Check(t)
	entered := make(chan struct{}, 1)
	srv, cli, _ := newDrainPair(t, 1, entered, 400*time.Millisecond)

	pending := cli.Go("slow", echoReq{}, &echoResp{})
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("slow handler never entered")
	}

	err := srv.Drain(20 * time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "force-closed") {
		t.Fatalf("drain err = %v, want force-closed report", err)
	}
	<-pending.Done
	if pending.Err() == nil {
		t.Fatal("force-closed connection still delivered a response")
	}
}

// TestDrainIdleServer drains instantly with no connections or only idle
// ones.
func TestDrainIdleServer(t *testing.T) {
	leakcheck.Check(t)
	entered := make(chan struct{}, 1)
	srv, cli, _ := newDrainPair(t, 1, entered, 0)
	// One completed call leaves the connection idle.
	if err := cli.Call("echo", echoReq{Note: "x"}, &echoResp{}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := srv.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain of idle server: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("idle drain took %v", d)
	}
}

// TestAttemptAndEpochFailHooks pins the failover layer's two rmi seams:
// OnAttempt sees every completed wire attempt with its outcome, and
// OnEpochFail fires once per poisoned epoch — but never for the
// administrative teardown of Close.
func TestAttemptAndEpochFailHooks(t *testing.T) {
	leakcheck.Check(t)
	entered := make(chan struct{}, 1)
	_, cli, _ := newDrainPair(t, 1, entered, 300*time.Millisecond)

	var mu sync.Mutex
	var attempts []error
	var epochFails []error
	cli.OnAttempt = func(method string, rtt time.Duration, err error) {
		mu.Lock()
		defer mu.Unlock()
		if rtt <= 0 {
			t.Errorf("attempt %s reported non-positive rtt %v", method, rtt)
		}
		attempts = append(attempts, err)
	}
	cli.OnEpochFail = func(err error) {
		mu.Lock()
		defer mu.Unlock()
		epochFails = append(epochFails, err)
	}

	if err := cli.Call("echo", echoReq{Note: "ok"}, &echoResp{}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if len(attempts) != 1 || attempts[0] != nil {
		t.Fatalf("attempts after success = %v, want one nil entry", attempts)
	}
	if len(epochFails) != 0 {
		t.Fatalf("epoch fails after success = %v", epochFails)
	}
	mu.Unlock()

	// A per-call deadline expiry poisons the epoch: exactly one epoch
	// failure, and the attempt reports its error.
	cli.Timeout = 30 * time.Millisecond
	if err := cli.Call("slow", echoReq{}, &echoResp{}); err == nil {
		t.Fatal("slow call beat a 30ms deadline")
	}
	mu.Lock()
	if len(epochFails) != 1 {
		t.Fatalf("epoch fails after deadline = %d, want 1", len(epochFails))
	}
	if len(attempts) != 2 || attempts[1] == nil {
		t.Fatalf("attempts after deadline = %v, want a second, failed entry", attempts)
	}
	mu.Unlock()

	// Close is administrative: the hook must not blame a replica.
	cli.Timeout = 0
	if err := cli.Close(); err != nil && !errors.Is(err, errClientClosed) {
		t.Logf("close: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(epochFails) != 1 {
		t.Fatalf("Close fired the epoch-fail hook: %v", epochFails)
	}
}
