package rmi

import (
	"bytes"
	"encoding/gob"
	"net"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/security"
)

// fuzzSeedFrames covers every frame kind plus edge shapes, so the fuzzer
// starts from the real protocol vocabulary.
func fuzzSeedFrames() []frame {
	return []frame{
		{Kind: kindHello, Client: "user", Nonce: []byte{1, 2, 3, 4}, Tag: "aabbcc"},
		{Kind: kindWelcome, Session: "sess-1"},
		{Kind: kindRequest, ID: 7, Session: "sess-1", Method: "power.batch", Payload: []byte{0x42, 0x00, 0xff}},
		{Kind: kindResponse, ID: 7, Payload: []byte("gob-bytes")},
		{Kind: kindResponse, ID: 9, Err: "unknown method"},
		{}, // all-zero frame
	}
}

// FuzzFrameRoundTrip asserts the wire envelope survives encode/decode for
// arbitrary field contents: whatever goes out must come back identical.
func FuzzFrameRoundTrip(f *testing.F) {
	for _, fr := range fuzzSeedFrames() {
		f.Add(fr.Kind, fr.ID, fr.Session, fr.Method, fr.Payload, fr.Err, fr.Client, fr.Nonce, fr.Tag)
	}
	f.Fuzz(func(t *testing.T, kind uint8, id uint64, session, method string, payload []byte, errStr, client string, nonce []byte, tag string) {
		in := frame{Kind: kind, ID: id, Session: session, Method: method,
			Payload: payload, Err: errStr, Client: client, Nonce: nonce, Tag: tag}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&in); err != nil {
			t.Fatalf("encode: %v", err)
		}
		var out frame
		if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
			t.Fatalf("decode of own encoding failed: %v", err)
		}
		if out.Kind != in.Kind || out.ID != in.ID || out.Session != in.Session ||
			out.Method != in.Method || out.Err != in.Err || out.Client != in.Client || out.Tag != in.Tag {
			t.Fatalf("round trip mutated scalar fields: %+v -> %+v", in, out)
		}
		// gob decodes empty slices to nil; compare contents.
		if !bytes.Equal(out.Payload, in.Payload) || !bytes.Equal(out.Nonce, in.Nonce) {
			t.Fatalf("round trip mutated byte fields: %+v -> %+v", in, out)
		}
	})
}

// FuzzDecode feeds arbitrary bytes to the frame decoder — the path a
// malicious or corrupted peer reaches first. It must reject garbage with
// an error, never panic or loop.
func FuzzDecode(f *testing.F) {
	// Well-formed frames of each kind as seeds, so mutation explores near
	// the valid encoding.
	for _, fr := range fuzzSeedFrames() {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&fr); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// A malformed type tag: a valid frame encoding with its gob type id
	// byte corrupted.
	{
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&frame{Kind: kindRequest, ID: 1, Method: "eval"}); err != nil {
			f.Fatal(err)
		}
		raw := buf.Bytes()
		if len(raw) > 1 {
			raw[1] ^= 0x7f
		}
		f.Add(raw)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr frame
		// Errors are expected for garbage; panics and hangs are the bugs.
		_ = gob.NewDecoder(bytes.NewReader(data)).Decode(&fr)
		// The payload helper must be equally robust.
		var env echoReq
		_ = Decode(data, &env)
	})
}

// FuzzMuxFaultyConn drives the pipelined transport over a connection
// with fuzz-chosen injected faults — torn partial writes, byte-at-a-time
// slow drips, resets, and drops at fuzzed operation counts — against a
// well-behaved echo peer. Every in-flight call must resolve (successfully
// or with the epoch fault) without a panic or hang: the per-call deadline
// is the backstop for swallowed and torn frames.
func FuzzMuxFaultyConn(f *testing.F) {
	f.Add(uint8(netsim.FaultPartial), uint8(0), uint8(1), uint8(3))
	f.Add(uint8(netsim.FaultSlowDrip), uint8(0), uint8(2), uint8(0))
	f.Add(uint8(netsim.FaultSlowDrip), uint8(1), uint8(1), uint8(0))
	f.Add(uint8(netsim.FaultReset), uint8(0), uint8(4), uint8(0))
	f.Add(uint8(netsim.FaultDrop), uint8(0), uint8(2), uint8(0))
	f.Add(uint8(netsim.FaultTruncate), uint8(0), uint8(3), uint8(5))
	f.Fuzz(func(t *testing.T, kind, op, nth, keep uint8) {
		key, err := security.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		srvConn, cliConn := net.Pipe()
		go func() {
			defer srvConn.Close()
			fw, fr, err := sniffTestCodec(srvConn)
			if err != nil {
				return
			}
			var hello frame
			if fr.readFrame(&hello) != nil {
				return
			}
			if fw.writeFrame(&frame{Kind: kindWelcome, Session: "fuzz"}) != nil {
				return
			}
			for {
				var req frame
				if fr.readFrame(&req) != nil {
					return
				}
				var body echoReq
				resp := frame{Kind: kindResponse, ID: req.ID}
				if err := Decode(req.Payload, &body); err != nil {
					resp.Err = err.Error()
				} else if p, err := Encode(echoResp{Bits: body.Bits}); err != nil {
					resp.Err = err.Error()
				} else {
					resp.Payload = p
				}
				if fw.writeFrame(&resp) != nil {
					return
				}
			}
		}()
		plan := &netsim.FaultPlan{Rules: []netsim.FaultRule{{
			Op:    netsim.FaultOp(op % 2),
			Nth:   1 + int(nth%8),
			Kind:  netsim.FaultKind(kind % 6),
			Delay: 50 * time.Microsecond,
			Keep:  int(keep % 16),
		}}}
		fc := plan.Wrap(cliConn)
		cli, err := NewClient(fc, "user", key)
		if err != nil {
			fc.Close()
			srvConn.Close()
			return // a fault during the handshake is a non-event
		}
		defer cli.Close()
		cli.Timeout = 200 * time.Millisecond
		cli.MaxInFlight = 4
		var pending []*Pending
		for i := 0; i < 6; i++ {
			resp := new(echoResp)
			pending = append(pending, cli.Go("m", echoReq{Note: "fuzz"}, resp))
		}
		for i, p := range pending {
			select {
			case <-p.Done:
			case <-time.After(10 * time.Second):
				t.Fatalf("call %d hung on faulty connection (fault %v)", i, plan.Rules[0])
			}
		}
	})
}

// FuzzMuxResponses drives the pipelined transport against an adversarial
// peer that answers every request with a fuzz-shaped frame — mutated IDs,
// wrong kinds, error strings, undecodable payloads. The client must
// resolve every in-flight call (success, remote error, or epoch poison)
// without panicking or hanging; the per-call deadline is the backstop.
func FuzzMuxResponses(f *testing.F) {
	f.Add(uint64(0), uint8(kindResponse), []byte{}, "")
	f.Add(uint64(1), uint8(kindResponse), []byte{1, 2, 3}, "")
	f.Add(uint64(999), uint8(kindResponse), []byte(nil), "")
	f.Add(uint64(0), uint8(kindResponse), []byte(nil), "remote boom")
	f.Add(uint64(0), uint8(kindRequest), []byte(nil), "")
	f.Add(uint64(7), uint8(0xff), []byte{0xde, 0xad}, "x")
	f.Fuzz(func(t *testing.T, idDelta uint64, kind uint8, payload []byte, errStr string) {
		key, err := security.NewKey()
		if err != nil {
			t.Fatal(err)
		}
		srvConn, cliConn := net.Pipe()
		go func() {
			defer srvConn.Close()
			fw, fr, err := sniffTestCodec(srvConn)
			if err != nil {
				return
			}
			var hello frame
			if fr.readFrame(&hello) != nil {
				return
			}
			if fw.writeFrame(&frame{Kind: kindWelcome, Session: "fuzz"}) != nil {
				return
			}
			for {
				var req frame
				if fr.readFrame(&req) != nil {
					return
				}
				resp := frame{Kind: kind, ID: req.ID + idDelta, Payload: payload, Err: errStr}
				if fw.writeFrame(&resp) != nil {
					return
				}
			}
		}()
		cli, err := NewClient(cliConn, "user", key)
		if err != nil {
			cliConn.Close()
			return // a peer that breaks the handshake is a non-event
		}
		defer cli.Close()
		cli.Timeout = 200 * time.Millisecond
		cli.MaxInFlight = 4
		var pending []*Pending
		for i := 0; i < 4; i++ {
			resp := new(echoResp)
			pending = append(pending, cli.Go("m", echoReq{Note: "fuzz"}, resp))
		}
		for i, p := range pending {
			select {
			case <-p.Done:
			case <-time.After(10 * time.Second):
				t.Fatalf("call %d hung on fuzzed response stream", i)
			}
		}
	})
}
