package rmi

import (
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/security"
)

// TestHandshakeDeadlineStalledDialer is the regression test for the
// handshake-hang exposure: a client that connects and never sends its
// hello frame used to park a ServeConn goroutine indefinitely when no
// IdleTimeout was set. With the handshake deadline the server must
// close the connection and release the goroutine on its own.
func TestHandshakeDeadlineStalledDialer(t *testing.T) {
	leakcheck.Check(t)
	srv := NewServer("prov")
	srv.HandshakeTimeout = 100 * time.Millisecond
	key, _ := security.NewKey()
	srv.Authorize("user", key)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing. The server must hang up on us, which we observe as
	// the read side of our connection closing.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server sent data to a client that never completed the handshake")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept a never-speaking connection open past the handshake deadline")
	}
}

// TestHandshakeDeadlinePartialHello stalls one byte into the protocol
// (enough to select a codec, not enough to form a hello frame): the
// deadline must still cut the connection loose.
func TestHandshakeDeadlinePartialHello(t *testing.T) {
	leakcheck.Check(t)
	srv := NewServer("prov")
	srv.HandshakeTimeout = 100 * time.Millisecond
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{binMagic0}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a half-handshake")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept a stalled half-handshake open past the deadline")
	}
}

// TestSessionRetiredOnDisconnect: the session table must not grow one
// entry per connection forever — a closed connection retires its
// session.
func TestSessionRetiredOnDisconnect(t *testing.T) {
	leakcheck.Check(t)
	srv, cli := newTestPair(t, nil)
	if got := len(srv.Sessions()); got != 1 {
		t.Fatalf("sessions while connected = %d, want 1", got)
	}
	cli.Close()
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.Sessions()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session not retired after disconnect: %d live", len(srv.Sessions()))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLogfRateLimited feeds a 10k-line burst through the server's
// logging path (what a reject storm produces) and asserts the sink sees
// a bounded number of lines plus a suppression summary — the log must
// never become the bottleneck of the rejection path itself.
func TestLogfRateLimited(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	srv := NewServer("prov")
	srv.LogBurst = 20
	srv.Logf = func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, format)
	}
	for i := 0; i < 10_000; i++ {
		srv.logf("rmi server %s: handshake rejected from %v: %v", srv.Name, "peer", "overload")
	}
	mu.Lock()
	n := len(lines)
	mu.Unlock()
	// The burst can straddle one window boundary: at most two windows'
	// worth of lines (plus one summary) may land.
	if n > 2*srv.LogBurst+1 {
		t.Fatalf("10k-line burst produced %d log lines, want <= %d", n, 2*srv.LogBurst+1)
	}

	// The next window must surface the suppressed count loudly.
	time.Sleep(1100 * time.Millisecond)
	srv.logf("post-burst line")
	mu.Lock()
	defer mu.Unlock()
	var sawSummary bool
	for _, l := range lines {
		if strings.Contains(l, "suppressed by rate limit") {
			sawSummary = true
		}
	}
	if !sawSummary {
		t.Fatalf("no suppression summary after a 10k burst; lines: %d", len(lines))
	}
}

// TestLogfUnlimitedOptOut pins the escape hatch: LogBurst < 0 disables
// sampling entirely.
func TestLogfUnlimitedOptOut(t *testing.T) {
	var n atomic.Int64
	srv := NewServer("prov")
	srv.LogBurst = -1
	srv.Logf = func(format string, args ...any) { n.Add(1) }
	for i := 0; i < 500; i++ {
		srv.logf("line %d", i)
	}
	if got := n.Load(); got != 500 {
		t.Fatalf("unlimited logf emitted %d of 500 lines", got)
	}
}
