package rmi

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultInFlight is the in-flight call bound used when Client.MaxInFlight
// is zero: deep enough that pipelined batch traffic overlaps WAN round
// trips, small enough that a stalled provider cannot absorb unbounded
// requests. Serial callers behave identically at any depth; depth 1
// reproduces the stop-and-wait transport exactly.
const DefaultInFlight = 8

// pendingCall is one in-flight request on a mux: the encoded frame
// waiting in (or drained from) the send queue, and the completion state
// the reader fills in when the matching response frame arrives.
type pendingCall struct {
	id     uint64
	seq    uint64 // wire-order sequence (send-queue position) for the recorder gate
	method string
	frame  frame    // request frame, embedded so a call costs one allocation
	args   PortData // retained for the Recorder hook
	reply  any

	timer *time.Timer // per-call deadline; fires into mux.fail

	// sent/recvd are the call's wire byte volumes. They are written by the
	// writer and reader pumps respectively and read by the caller after
	// done closes; atomics give the cross-goroutine edge the race detector
	// wants without sharing the mux lock.
	sent, recvd atomic.Int64

	err  error
	done chan struct{}
}

// mux is one transport epoch of a Client: a single authenticated
// connection with a dedicated writer pump draining a FIFO send queue, a
// reader pump correlating response frames to pending calls by frame.ID,
// and an in-flight bound so N calls can pipeline on the one framed
// stream.
//
// A mux never heals: any transport fault (send/receive error, per-call
// deadline, an unknown response ID) fails the whole epoch, resolving
// every pending call with the fault. The owning Client then builds a
// fresh mux on the next call attempt (reconnect + session replay).
type mux struct {
	c       *Client
	conn    *countingConn
	fw      frameEncoder
	fr      frameDecoder
	session string

	mu       sync.Mutex
	slotFree *sync.Cond // waits for the in-flight bound
	sendRdy  *sync.Cond // wakes the writer pump
	queue    []*pendingCall
	pending  map[uint64]*pendingCall
	active   int // calls holding an in-flight slot
	peak     int // high-water mark of active (observability/tests)
	nextSeq  uint64
	failed   bool
	failErr  error

	done chan struct{} // closed on fail; read by slot waiters and pumps

	gate recorderGate
}

// newMux wraps a freshly handshaken connection. The pumps are not
// started: reconnect runs the session replay serially on the bare
// frame codec first (see Client.reconnectLocked), then calls start.
func newMux(c *Client, conn *countingConn, fw frameEncoder, fr frameDecoder, session string) *mux {
	m := &mux{
		c:       c,
		conn:    conn,
		fw:      fw,
		fr:      fr,
		session: session,
		pending: make(map[uint64]*pendingCall),
		done:    make(chan struct{}),
	}
	m.slotFree = sync.NewCond(&m.mu)
	m.sendRdy = sync.NewCond(&m.mu)
	m.gate.held = make(map[uint64]func())
	return m
}

// start launches the writer and reader pumps.
func (m *mux) start() {
	go m.writer()
	go m.reader()
}

// broken reports whether the epoch has failed.
func (m *mux) broken() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// acquire blocks until an in-flight slot is free (or the epoch fails).
// Every successful acquire must be balanced by release — including for
// calls that complete with an error.
func (m *mux) acquire() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	for !m.failed && m.active >= m.c.depth() {
		m.slotFree.Wait()
	}
	if m.failed {
		return m.failErr
	}
	m.active++
	if m.active > m.peak {
		m.peak = m.active
	}
	return nil
}

// release returns an in-flight slot. Callers hold the slot through the
// emulated network delay, so at depth 1 queued calls serialize behind
// the full round trip exactly like the stop-and-wait transport.
func (m *mux) release() {
	m.mu.Lock()
	m.active--
	m.slotFree.Signal()
	m.mu.Unlock()
}

// enqueue registers a call in the pending table and appends its frame to
// the send queue. The caller already holds an in-flight slot. Queue
// position is the call's wire order; the recorder gate releases journal
// records in exactly this order even when responses complete out of
// order.
func (m *mux) enqueue(method string, args PortData, payload []byte, reply any) (*pendingCall, error) {
	pc := &pendingCall{
		method: method,
		args:   args,
		reply:  reply,
		done:   make(chan struct{}),
	}
	m.mu.Lock()
	if m.failed {
		err := m.failErr
		m.mu.Unlock()
		return nil, fmt.Errorf("rmi: %s: %w", method, err)
	}
	pc.id = m.c.nextCallID()
	pc.seq = m.nextSeq
	m.nextSeq++
	pc.frame = frame{Kind: kindRequest, ID: pc.id, Session: m.session, Method: method, Payload: payload}
	if d := m.c.Timeout; d > 0 {
		// The per-call deadline spans queue wait, transmission, and the
		// response. A deadline expiry abandons the whole epoch: the
		// stream is in an undefined state (the response may yet arrive),
		// so the connection cannot be reused — same contract as the
		// stop-and-wait transport. Armed before the call becomes visible
		// to the pumps, so the reader's timer.Stop is ordered after it.
		pc.timer = time.AfterFunc(d, func() {
			m.fail(fmt.Errorf("rmi: %s: no response within %v (transport abandoned)", method, d))
		})
	}
	m.pending[pc.id] = pc
	m.queue = append(m.queue, pc)
	m.sendRdy.Signal()
	m.mu.Unlock()
	return pc, nil
}

// writer is the send pump: the sole goroutine touching the frame
// encoder after start, draining the queue FIFO so wire order equals
// enqueue order.
func (m *mux) writer() {
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.failed {
			m.sendRdy.Wait()
		}
		if m.failed {
			m.mu.Unlock()
			return
		}
		pc := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()

		w0 := m.conn.written
		if err := m.fw.writeFrame(&pc.frame); err != nil {
			m.fail(fmt.Errorf("rmi: send %s: %w", pc.method, err))
			return
		}
		pc.sent.Store(m.conn.written - w0)
	}
}

// reader is the receive pump: the sole goroutine touching the frame
// decoder after start. It correlates each response frame to its pending call by ID —
// responses may complete in any order. A frame that matches no pending
// call means the stream is desynchronized (e.g. a stale response from a
// confused peer): the epoch is poisoned so no caller can be handed
// another call's data.
func (m *mux) reader() {
	// One response frame for the life of the pump: both codecs reset it
	// on read, and complete() consumes it synchronously before the next
	// readFrame can overwrite it.
	var resp frame
	for {
		r0 := m.conn.read
		if err := m.fr.readFrame(&resp); err != nil {
			m.fail(fmt.Errorf("rmi: receive: %w", err))
			return
		}
		recvd := m.conn.read - r0
		m.mu.Lock()
		pc, ok := m.pending[resp.ID]
		if ok && resp.Kind == kindResponse {
			delete(m.pending, resp.ID)
		}
		m.mu.Unlock()
		if !ok {
			m.fail(fmt.Errorf("rmi: response id %d matches no in-flight request (stream desynchronized)", resp.ID))
			return
		}
		if resp.Kind != kindResponse {
			// The call stays in the pending table so fail resolves it along
			// with every other in-flight call.
			m.fail(fmt.Errorf("rmi: frame kind %d for in-flight request %d (stream desynchronized)", resp.Kind, resp.ID))
			return
		}
		if pc.timer != nil {
			pc.timer.Stop()
		}
		pc.recvd.Store(recvd)
		m.complete(pc, &resp)
	}
}

// complete resolves one answered call: remote errors, payload decode,
// then the recorder gate (successful calls journal in wire order) and
// the caller wake-up.
func (m *mux) complete(pc *pendingCall, resp *frame) {
	if resp.Err != "" {
		pc.err = &RemoteError{Method: pc.method, Msg: resp.Err}
	} else if pc.reply != nil {
		if err := Decode(resp.Payload, pc.reply); err != nil {
			// The frame arrived intact; re-executing the method would
			// return the same undecodable payload.
			pc.err = &permanentError{err: err}
		}
	}
	if rec := m.c.Recorder; rec != nil && pc.err == nil {
		pc := pc
		m.gate.done(pc.seq, func() { rec(pc.method, pc.args, pc.reply) })
	} else {
		m.gate.done(pc.seq, nil)
	}
	close(pc.done)
}

// fail poisons the epoch: the first fault wins, the connection closes
// (unblocking both pumps), and every pending call — queued or on the
// wire — resolves with the fault. Their recorder-gate slots are released
// empty so the journal stays contiguous; by the time the owning Client
// reconnects and replays, the gate has fully drained and the journal is
// exactly the successful-call prefix in wire order.
func (m *mux) fail(err error) error {
	m.mu.Lock()
	if m.failed {
		m.mu.Unlock()
		return nil
	}
	m.failed = true
	m.failErr = err
	orphans := m.pending
	m.pending = make(map[uint64]*pendingCall)
	m.queue = nil
	close(m.done)
	m.slotFree.Broadcast()
	m.sendRdy.Broadcast()
	m.mu.Unlock()
	// Report the epoch death to the failover layer exactly once, before
	// resolving the orphans: by the time any caller retries (and the
	// client redials), the replica set has already charged the breaker.
	// Administrative teardowns — client Close, epoch supersession during
	// reconnect — are not replica failures and are filtered out.
	if h := m.c.OnEpochFail; h != nil && !errors.Is(err, errClientClosed) && !errors.Is(err, errSuperseded) {
		h(err)
	}
	closeErr := m.conn.Close()
	for _, pc := range orphans {
		if pc.timer != nil {
			pc.timer.Stop()
		}
		pc.err = fmt.Errorf("rmi: %s: %w", pc.method, err)
		m.gate.done(pc.seq, nil)
		close(pc.done)
	}
	return closeErr
}

// directCall runs one serial request/response round trip on the bare
// connection, before the pumps have started — the restricted surface
// session replay uses. No emulation, metering, or recording applies:
// recovery overhead is not part of the workload's traffic accounting.
func (m *mux) directCall(method string, args PortData, reply any) error {
	payload, err := EncodePayload(args, m.c.codec)
	if err != nil {
		return err
	}
	id := m.c.nextCallID()
	req := frame{Kind: kindRequest, ID: id, Session: m.session, Method: method, Payload: payload}
	if m.c.Timeout > 0 {
		_ = m.conn.SetDeadline(time.Now().Add(m.c.Timeout))
	}
	if err := m.fw.writeFrame(&req); err != nil {
		return fmt.Errorf("rmi: send %s: %w", method, err)
	}
	var resp frame
	if err := m.fr.readFrame(&resp); err != nil {
		return fmt.Errorf("rmi: receive %s: %w", method, err)
	}
	if m.c.Timeout > 0 {
		_ = m.conn.SetDeadline(time.Time{})
	}
	if resp.ID != id {
		return fmt.Errorf("rmi: %s: response id %d for request %d (stream desynchronized)", method, resp.ID, id)
	}
	if resp.Err != "" {
		return &RemoteError{Method: method, Msg: resp.Err}
	}
	if reply == nil {
		return nil
	}
	if err := Decode(resp.Payload, reply); err != nil {
		return &permanentError{err: err}
	}
	return nil
}

// recorderGate releases per-call completion callbacks in wire (send
// queue) order, even though the reader resolves responses in arrival
// order. Each enqueued call owns one sequence slot and reports exactly
// once — with its journal callback on success, empty otherwise — and the
// gate runs the contiguous resolved prefix. This re-establishes the
// stop-and-wait guarantee the session journal replay depends on: journal
// append order is wire order.
type recorderGate struct {
	mu   sync.Mutex
	next uint64
	held map[uint64]func()
}

// done reports sequence slot seq resolved; fn (which may be nil) runs
// once every earlier slot has resolved. Callbacks run under the gate
// lock, serializing journal appends in order.
func (g *recorderGate) done(seq uint64, fn func()) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.held[seq] = fn
	for {
		f, ok := g.held[g.next]
		if !ok {
			return
		}
		delete(g.held, g.next)
		g.next++
		if f != nil {
			f()
		}
	}
}
