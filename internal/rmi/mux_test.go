package rmi

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/netsim"
	"repro/internal/signal"
)

// newPipelinePair starts an echo server with per-session concurrent
// dispatch and a handler that holds each request briefly, so pipelined
// requests genuinely overlap at the provider.
func newPipelinePair(t *testing.T, workers int, hold time.Duration) *Client {
	t.Helper()
	_, cli := newTestPair(t, func(srv *Server) {
		srv.SessionWorkers = workers
		srv.Handle("hold", func(sess *Session, payload []byte) (any, error) {
			var req echoReq
			if err := Decode(payload, &req); err != nil {
				return nil, err
			}
			time.Sleep(hold)
			return echoResp{Bits: req.Bits}, nil
		})
	})
	return cli
}

// TestPipelinedCallsAtDepths drives many concurrent calls through the
// mux at several in-flight depths under -race: every response must
// correlate back to its own request, and the observed in-flight
// high-water mark must respect the configured bound (and actually
// pipeline when the bound allows it).
func TestPipelinedCallsAtDepths(t *testing.T) {
	for _, depth := range []int{1, 4, 32} {
		depth := depth
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			leakcheck.Check(t) // the mux pumps must all unwind on close
			cli := newPipelinePair(t, 8, 10*time.Millisecond)
			cli.MaxInFlight = depth
			const calls = 32
			var wg sync.WaitGroup
			errs := make([]error, calls)
			got := make([]echoResp, calls)
			for i := 0; i < calls; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					req := echoReq{Bits: []signal.Bit{signal.Bit(i % 3)}, Note: fmt.Sprint(i)}
					errs[i] = cli.Call("hold", req, &got[i])
				}(i)
			}
			wg.Wait()
			for i := 0; i < calls; i++ {
				if errs[i] != nil {
					t.Fatalf("call %d: %v", i, errs[i])
				}
				if len(got[i].Bits) != 1 || got[i].Bits[0] != signal.Bit(i%3) {
					t.Errorf("call %d: response %v correlated to the wrong request", i, got[i].Bits)
				}
			}
			peak := cli.PeakInFlight()
			if peak > depth {
				t.Errorf("peak in-flight %d exceeds configured depth %d", peak, depth)
			}
			if depth == 1 && peak != 1 {
				t.Errorf("peak in-flight %d at depth 1; want exactly 1 (stop-and-wait)", peak)
			}
			if depth > 1 && peak < 2 {
				t.Errorf("peak in-flight %d at depth %d; calls never pipelined", peak, depth)
			}
		})
	}
}

// TestPipelineCorrelatesOutOfOrderResponses makes the provider complete
// a later request before an earlier one (concurrent session workers, the
// first request held much longer): the reader must hand each caller its
// own payload via ID correlation, not wire order.
func TestPipelineCorrelatesOutOfOrderResponses(t *testing.T) {
	_, cli := newTestPair(t, func(srv *Server) {
		srv.SessionWorkers = 4
		srv.Handle("vardelay", func(sess *Session, payload []byte) (any, error) {
			var req echoReq
			if err := Decode(payload, &req); err != nil {
				return nil, err
			}
			if req.Note == "slow" {
				time.Sleep(80 * time.Millisecond)
			}
			return echoResp{Bits: req.Bits}, nil
		})
	})
	cli.MaxInFlight = 8

	var slowResp echoResp
	slow := cli.Go("vardelay", echoReq{Bits: []signal.Bit{signal.B1}, Note: "slow"}, &slowResp)
	// Give the slow request time to reach the wire first.
	time.Sleep(10 * time.Millisecond)
	var fastResp echoResp
	start := time.Now()
	if err := cli.Call("vardelay", echoReq{Bits: []signal.Bit{signal.B0}, Note: "fast"}, &fastResp); err != nil {
		t.Fatal(err)
	}
	fastDone := time.Since(start)
	<-slow.Done
	if slow.Err() != nil {
		t.Fatal(slow.Err())
	}
	if slowResp.Bits[0] != signal.B1 || fastResp.Bits[0] != signal.B0 {
		t.Errorf("responses crossed: slow=%v fast=%v", slowResp.Bits, fastResp.Bits)
	}
	if fastDone >= 70*time.Millisecond {
		t.Errorf("fast call took %v; it serialized behind the slow one instead of overtaking", fastDone)
	}
}

// rogueStaleMidPipeline reads three pipelined requests, answers the
// first correctly, then desynchronizes the stream with a bogus response
// ID while two calls are still in flight.
func rogueStaleMidPipeline(conn net.Conn, fw frameEncoder, fr frameDecoder, requests *atomic.Int32) {
	var reqs []frame
	for i := 0; i < 3; i++ {
		var req frame
		if fr.readFrame(&req) != nil {
			return
		}
		requests.Add(1)
		reqs = append(reqs, req)
	}
	if fw.writeFrame(&frame{Kind: kindResponse, ID: reqs[0].ID}) != nil {
		return
	}
	_ = fw.writeFrame(&frame{Kind: kindResponse, ID: reqs[1].ID + 100000})
}

// TestUnknownResponseIDFailsAllInFlight pins the mux poison semantics: a
// response matching no pending call abandons the epoch, and EVERY call
// still in flight resolves with the desynchronization fault — none may
// hang or be handed another call's data.
func TestUnknownResponseIDFailsAllInFlight(t *testing.T) {
	r := startRogue(t, rogueStaleMidPipeline)
	cli := rogueClient(t, r)
	cli.MaxInFlight = 8
	cli.Redial = nil // surface the fault rather than healing

	pending := []*Pending{
		cli.Go("m", echoReq{Note: "0"}, nil),
		cli.Go("m", echoReq{Note: "1"}, nil),
		cli.Go("m", echoReq{Note: "2"}, nil),
	}
	deadline := time.After(5 * time.Second)
	var failed, ok int
	for i, p := range pending {
		select {
		case <-p.Done:
		case <-deadline:
			t.Fatalf("call %d hung after mid-pipeline desync", i)
		}
		if err := p.Err(); err != nil {
			if !strings.Contains(err.Error(), "desynchronized") {
				t.Errorf("call %d: err = %v, want desynchronization fault", i, err)
			}
			failed++
		} else {
			ok++
		}
	}
	// The correctly-answered first call may complete before the poison
	// lands; the two still in flight must both fail.
	if failed < 2 {
		t.Errorf("failed=%d ok=%d; the poisoned epoch let in-flight calls succeed", failed, ok)
	}
	if cli.Dead() {
		t.Error("single desync must not declare the provider dead")
	}
}

// TestMidPipelineDisconnectHealsEveryCall kills the connection by fault
// plan while a deep pipeline is in flight: every pending call fails over
// the retry/reconnect ladder and ultimately succeeds on the replacement
// connection.
func TestMidPipelineDisconnectHealsEveryCall(t *testing.T) {
	leakcheck.Check(t) // reconnect must not orphan the dead epoch's pumps
	cli, dialer, calls := newFaultServer(t, []*netsim.FaultPlan{netsim.ResetAfterWrites(9), nil})
	cli.MaxInFlight = 8
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			errs[i] = cli.Call("echo", echoReq{Bits: []signal.Bit{signal.B1}}, &resp)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d not healed: %v", i, err)
		}
	}
	if fired := dialer.Conn(0).Fired(); len(fired) != 1 {
		t.Fatalf("scripted mid-pipeline reset did not fire: %v", fired)
	}
	if got := cli.Reconnects(); got < 1 {
		t.Errorf("reconnects = %d, want ≥ 1", got)
	}
	if cli.Dead() {
		t.Error("client wrongly declared dead")
	}
	if calls.Load() < n {
		t.Errorf("server executed %d calls, want ≥ %d", calls.Load(), n)
	}
}

// TestCloseInterruptsBackoff is the regression for the uninterruptible
// retry sleep: a client parked in a multi-second backoff must abandon
// the wait promptly when Close is called, instead of pinning the caller
// for the full schedule.
func TestCloseInterruptsBackoff(t *testing.T) {
	srv := NewServer("prov")
	key := testKey(t)
	srv.Authorize("user", key)
	srv.Handle("echo", func(sess *Session, payload []byte) (any, error) {
		return echoResp{}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dialer := &netsim.FaultyDialer{
		Base:  func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Plans: []*netsim.FaultPlan{netsim.ResetAfterWrites(8)},
	}
	conn, err := dialer.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(conn, "user", key)
	if err != nil {
		t.Fatal(err)
	}
	cli.Redial = dialer.Dial
	cli.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: 10 * time.Second}
	// Take the listener down: the established connection keeps serving
	// until the scripted reset, after which every redial fails and the
	// retry ladder has nowhere to go but its 10-second backoff sleeps.
	srv.Close()

	done := make(chan error, 1)
	go func() {
		for {
			if err := cli.Call("echo", echoReq{}, nil); err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(300 * time.Millisecond) // reset fires; the failed call enters backoff
	start := time.Now()
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("call succeeded against a dead provider")
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("Call returned %v after Close, want prompt abort of the backoff sleep", elapsed)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call still sleeping in backoff 5s after Close")
	}
}

// TestDepthOneMatchesStopAndWaitBytes pins wire compatibility: the
// pipelined transport at depth 1 must meter exactly the same call and
// byte counts as a fresh serial exchange of the same payloads. The
// assertion is codec-relative — each codec is compared against itself
// at both depths, never against the other codec's frame sizes — and
// then the binary framing must come in strictly leaner than gob for
// the same traffic.
func TestDepthOneMatchesStopAndWaitBytes(t *testing.T) {
	wide := make([]signal.Bit, 1024)
	for i := range wide {
		wide[i] = signal.Bit(i % 4)
	}
	run := func(codec Codec, depth int, bits []signal.Bit) (int64, int64) {
		var meter netsim.Meter
		_, cli := newTestPairCodec(t, codec, nil)
		cli.Meter = &meter
		cli.MaxInFlight = depth
		for i := 0; i < 5; i++ {
			var resp echoResp
			if err := cli.Call("echo", echoReq{Bits: bits, Note: "x"}, &resp); err != nil {
				t.Fatal(err)
			}
		}
		return meter.Calls(), meter.Bytes()
	}
	perCodec := map[Codec]int64{}
	for _, codec := range []Codec{CodecBinary, CodecGob} {
		c1, b1 := run(codec, 1, []signal.Bit{signal.B1, signal.B0})
		cN, bN := run(codec, 8, []signal.Bit{signal.B1, signal.B0})
		if c1 != cN || b1 != bN {
			t.Errorf("%v: depth 1 metered calls=%d bytes=%d, depth 8 calls=%d bytes=%d; wire accounting diverged",
				codec, c1, b1, cN, bN)
		}
		_, perCodec[codec] = run(codec, 1, wide)
	}
	// At pattern widths that matter (the Table 2 batch payloads), the
	// packed binary encoding must beat gob's byte-per-bit slices. Tiny
	// payloads may tip the other way — gob amortizes type descriptors —
	// so the leanness claim is pinned at width, not at the minimum.
	if perCodec[CodecBinary] >= perCodec[CodecGob] {
		t.Errorf("binary framing metered %d bytes, gob %d on 1024-bit patterns; binary must be leaner",
			perCodec[CodecBinary], perCodec[CodecGob])
	}
}
