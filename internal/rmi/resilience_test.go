package rmi

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	mrand "math/rand/v2"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/security"
)

// fastRetry is an aggressive policy keeping tests quick.
var fastRetry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Multiplier: 2, JitterFrac: 0.2}

func testKey(t *testing.T) security.Key {
	t.Helper()
	key, err := security.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	return key
}

// newFaultServer couples an echo server with a FaultyDialer over TCP: the
// i-th connection suffers the i-th scripted fault plan.
func newFaultServer(t *testing.T, plans []*netsim.FaultPlan) (*Client, *netsim.FaultyDialer, *atomic.Int32) {
	t.Helper()
	srv := NewServer("prov")
	key := testKey(t)
	srv.Authorize("user", key)
	var calls atomic.Int32
	srv.Handle("echo", func(sess *Session, payload []byte) (any, error) {
		calls.Add(1)
		var req echoReq
		if err := Decode(payload, &req); err != nil {
			return nil, err
		}
		return echoResp{Bits: req.Bits}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	dialer := &netsim.FaultyDialer{
		Base:  func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Plans: plans,
	}
	conn, err := dialer.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(conn, "user", key)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	cli.Redial = dialer.Dial
	cli.Retry = fastRetry
	return cli, dialer, &calls
}

// TestRetryHealsConnectionReset kills the first connection at a scripted
// write count mid-run; every call must still succeed through reconnect.
func TestRetryHealsConnectionReset(t *testing.T) {
	cli, dialer, _ := newFaultServer(t, []*netsim.FaultPlan{netsim.ResetAfterWrites(10), nil})
	oldSession := cli.Session()
	for i := 0; i < 20; i++ {
		var resp echoResp
		if err := cli.Call("echo", echoReq{Note: "n"}, &resp); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := cli.Reconnects(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
	if dialer.Dials() != 2 {
		t.Errorf("dials = %d, want 2", dialer.Dials())
	}
	if fired := dialer.Conn(0).Fired(); len(fired) != 1 {
		t.Errorf("scripted fault did not fire: %v", fired)
	}
	if cli.Session() == oldSession {
		t.Error("session unchanged after reconnect; re-handshake did not happen")
	}
	if cli.Dead() {
		t.Error("client wrongly declared dead")
	}
}

// TestDroppedRequestTimesOutAndRetries swallows one request write: the
// provider never sees it, so only the per-call deadline can detect the
// loss, and the retry must replace the poisoned connection.
func TestDroppedRequestTimesOutAndRetries(t *testing.T) {
	cli, _, _ := newFaultServer(t, []*netsim.FaultPlan{netsim.DropWrite(10), nil})
	cli.Timeout = 200 * time.Millisecond
	for i := 0; i < 20; i++ {
		var resp echoResp
		if err := cli.Call("echo", echoReq{}, &resp); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := cli.Reconnects(); got < 1 {
		t.Errorf("reconnects = %d, want ≥ 1", got)
	}
}

// TestTruncatedFrameRecovered cuts a request frame short (reset
// mid-frame); the retry must succeed on a fresh connection.
func TestTruncatedFrameRecovered(t *testing.T) {
	cli, _, _ := newFaultServer(t, []*netsim.FaultPlan{netsim.TruncateWrite(10, 3), nil})
	for i := 0; i < 20; i++ {
		var resp echoResp
		if err := cli.Call("echo", echoReq{}, &resp); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if got := cli.Reconnects(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
}

// TestRemoteErrorNotRetried: an application-level error means the method
// executed; retrying would re-execute it.
func TestRemoteErrorNotRetried(t *testing.T) {
	srv := NewServer("prov")
	key := testKey(t)
	srv.Authorize("user", key)
	var n atomic.Int32
	srv.Handle("fail", func(sess *Session, payload []byte) (any, error) {
		n.Add(1)
		return nil, errors.New("application refused")
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(addr, "user", key)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Retry = fastRetry
	var re *RemoteError
	err = cli.Call("fail", echoReq{}, nil)
	if err == nil || !errors.As(err, &re) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
	if n.Load() != 1 {
		t.Errorf("handler executed %d times, want exactly 1 (no retry)", n.Load())
	}
	if cli.Dead() {
		t.Error("application error must not declare the provider dead")
	}
}

// rogueBehavior scripts one rogue connection, speaking raw frames in
// whatever codec the connecting client chose.
type rogueBehavior func(conn net.Conn, fw frameEncoder, fr frameDecoder, requests *atomic.Int32)

// rogueServer speaks raw frames so tests can script protocol-level
// misbehavior: ambiguous mid-call failures and stale-response desync. It
// sniffs the codec per connection exactly like the real server, so the
// same misbehavior scripts run under both codecs.
type rogueServer struct {
	ln       net.Listener
	requests atomic.Int32
	// behave scripts connection i; the default echoes forever.
	behave []rogueBehavior
}

func startRogue(t *testing.T, behave ...rogueBehavior) *rogueServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &rogueServer{ln: ln, behave: behave}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			b := rogueEcho
			if i < len(r.behave) && r.behave[i] != nil {
				b = r.behave[i]
			}
			go func() {
				defer conn.Close()
				fw, fr, err := sniffTestCodec(conn)
				if err != nil {
					return
				}
				var hello frame
				if err := fr.readFrame(&hello); err != nil {
					return
				}
				if err := fw.writeFrame(&frame{Kind: kindWelcome, Session: "rogue-session"}); err != nil {
					return
				}
				b(conn, fw, fr, &r.requests)
			}()
		}
	}()
	return r
}

// sniffTestCodec reproduces the server's per-connection codec detection
// for hand-rolled test peers.
func sniffTestCodec(conn net.Conn) (frameEncoder, frameDecoder, error) {
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return nil, nil, err
	}
	r := io.MultiReader(bytes.NewReader(first[:]), conn)
	if first[0] == binMagic0 {
		return &binFrameWriter{w: conn}, &binFrameReader{r: r}, nil
	}
	g := &gobFrameCodec{enc: gob.NewEncoder(conn), dec: gob.NewDecoder(r)}
	return g, g, nil
}

func (r *rogueServer) addr() string { return r.ln.Addr().String() }

// rogueEcho answers every request correctly.
func rogueEcho(conn net.Conn, fw frameEncoder, fr frameDecoder, requests *atomic.Int32) {
	for {
		var req frame
		if err := fr.readFrame(&req); err != nil {
			return
		}
		requests.Add(1)
		if err := fw.writeFrame(&frame{Kind: kindResponse, ID: req.ID}); err != nil {
			return
		}
	}
}

// rogueDropAfterRead reads one request and slams the connection shut —
// the canonical ambiguous failure (did it execute?).
func rogueDropAfterRead(conn net.Conn, fw frameEncoder, fr frameDecoder, requests *atomic.Int32) {
	var req frame
	if fr.readFrame(&req) == nil {
		requests.Add(1)
	}
	conn.Close()
}

// rogueStaleID answers the first request with a mismatched response ID —
// the stream-desynchronization case — then echoes correctly.
func rogueStaleID(conn net.Conn, fw frameEncoder, fr frameDecoder, requests *atomic.Int32) {
	var req frame
	if fr.readFrame(&req) != nil {
		return
	}
	requests.Add(1)
	if fw.writeFrame(&frame{Kind: kindResponse, ID: req.ID + 7}) != nil {
		return
	}
	rogueEcho(conn, fw, fr, requests)
}

func rogueClient(t *testing.T, r *rogueServer) *Client {
	return rogueClientCodec(t, r, CodecBinary)
}

// rogueClientCodec dials the rogue server under an explicit wire codec.
func rogueClientCodec(t *testing.T, r *rogueServer, codec Codec) *Client {
	t.Helper()
	cli, err := DialWith(r.addr(), "user", testKey(t), Config{Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli
}

// TestAmbiguousFailureRetriedOnlyWhenIdempotent pins the idempotency
// contract: an ambiguous mid-call failure re-executes idempotent methods
// (duplicate execution is the accepted cost) and surfaces immediately
// for non-idempotent ones (at-most-once preserved).
func TestAmbiguousFailureRetriedOnlyWhenIdempotent(t *testing.T) {
	t.Run("idempotent", func(t *testing.T) {
		r := startRogue(t, rogueDropAfterRead) // conn 2+: echo
		cli := rogueClient(t, r)
		cli.Retry = fastRetry
		if err := cli.Call("m", echoReq{}, nil); err != nil {
			t.Fatalf("retry did not heal ambiguous failure: %v", err)
		}
		if n := r.requests.Load(); n != 2 {
			t.Errorf("method executed %d times, want 2 (original + retry)", n)
		}
	})
	t.Run("non-idempotent", func(t *testing.T) {
		r := startRogue(t, rogueDropAfterRead)
		cli := rogueClient(t, r)
		cli.Retry = fastRetry
		cli.Idempotent = func(method string) bool { return false }
		err := cli.Call("m", echoReq{}, nil)
		if err == nil {
			t.Fatal("ambiguous failure of non-idempotent call was hidden by retry")
		}
		if n := r.requests.Load(); n != 1 {
			t.Errorf("method executed %d times, want exactly 1", n)
		}
		// The client is not dead: the next (idempotent) call heals.
		cli.Idempotent = nil
		if err := cli.Call("m", echoReq{}, nil); err != nil {
			t.Fatalf("client did not recover for the next call: %v", err)
		}
	})
}

// TestStaleResponseDesyncBreaksAndHeals is the regression for the
// session-counter desynchronization bug: a response whose ID does not
// match the outstanding request means a stale frame is in the stream.
// The client must abandon the connection (not leave the counter and
// stream skewed) so the retry path can heal on a fresh session.
func TestStaleResponseDesyncBreaksAndHeals(t *testing.T) {
	r := startRogue(t, rogueStaleID)
	cli := rogueClient(t, r)
	cli.Retry = fastRetry
	if err := cli.Call("m", echoReq{}, nil); err != nil {
		t.Fatalf("desync not healed: %v", err)
	}
	if got := cli.Reconnects(); got != 1 {
		t.Errorf("reconnects = %d, want 1 (stale frame must poison the connection)", got)
	}
	// Counters stay aligned afterwards: a burst of calls all match.
	for i := 0; i < 5; i++ {
		if err := cli.Call("m", echoReq{}, nil); err != nil {
			t.Fatalf("post-desync call %d: %v", i, err)
		}
	}
}

// TestStaleResponseWithoutRetrySurfacesAndIsolates: with retry disabled
// the desync error reaches the caller, and the poisoned connection is
// NOT reused — the next call runs on a fresh session instead of reading
// the stale frame as its own response.
func TestStaleResponseWithoutRetrySurfacesAndIsolates(t *testing.T) {
	r := startRogue(t, rogueStaleID)
	cli := rogueClient(t, r)
	err := cli.Call("m", echoReq{}, nil)
	if err == nil || !strings.Contains(err.Error(), "desynchronized") {
		t.Fatalf("err = %v, want desynchronization error", err)
	}
	// Next call must succeed via reconnect, not consume the stale frame.
	if err := cli.Call("m", echoReq{}, nil); err != nil {
		t.Fatalf("follow-up call: %v", err)
	}
	if got := cli.Reconnects(); got != 1 {
		t.Errorf("reconnects = %d, want 1", got)
	}
}

// TestProviderDeclaredDead exhausts retry and redial: the call must fail
// with ErrProviderDead and later calls must fail fast.
func TestProviderDeclaredDead(t *testing.T) {
	srv := NewServer("prov")
	key := testKey(t)
	srv.Authorize("user", key)
	srv.Handle("echo", func(sess *Session, payload []byte) (any, error) {
		return echoResp{}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dialer := &netsim.FaultyDialer{
		Base:  func() (net.Conn, error) { return net.Dial("tcp", addr) },
		Plans: []*netsim.FaultPlan{netsim.ResetAfterWrites(8)},
	}
	conn, err := dialer.Dial()
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewClient(conn, "user", key)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Retry = fastRetry
	cli.Redial = dialer.Dial
	// Take the provider down entirely: the listener stops accepting, so
	// every redial fails.
	srv.Close()

	var firstErr error
	for i := 0; i < 20 && firstErr == nil; i++ {
		firstErr = cli.Call("echo", echoReq{}, nil)
	}
	if firstErr == nil {
		t.Fatal("calls kept succeeding against a dead provider")
	}
	if !errors.Is(firstErr, ErrProviderDead) {
		t.Fatalf("err = %v, want ErrProviderDead", firstErr)
	}
	if !cli.Dead() {
		t.Error("client not marked dead")
	}
	// Fail-fast path: no backoff walk, immediate dead error.
	start := time.Now()
	err = cli.Call("echo", echoReq{}, nil)
	if !errors.Is(err, ErrProviderDead) {
		t.Fatalf("post-death err = %v", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("dead client call took %v, want fail-fast", d)
	}
}

// TestBackoffGrowsAndCaps pins the retry schedule shape.
func TestBackoffGrowsAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 6, BaseDelay: 10 * time.Millisecond, MaxDelay: 50 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		50 * time.Millisecond,
		50 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.backoff(i+1, nil); got != w {
			t.Errorf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	// Jitter stays within its fraction.
	pj := p
	pj.JitterFrac = 0.5
	jr := mrand.New(mrand.NewPCG(1, 2))
	for i := 0; i < 50; i++ {
		d := pj.backoff(2, jr)
		if d < 20*time.Millisecond || d > 30*time.Millisecond {
			t.Fatalf("jittered backoff %v outside [20ms, 30ms]", d)
		}
	}
}

// TestZeroPolicyKeepsLegacyBehavior: without retry or redial a transport
// failure surfaces immediately and the client does not go dead.
func TestZeroPolicyKeepsLegacyBehavior(t *testing.T) {
	r := startRogue(t, rogueDropAfterRead)
	cli := rogueClient(t, r)
	cli.Redial = nil
	if err := cli.Call("m", echoReq{}, nil); err == nil {
		t.Fatal("transport failure hidden without a retry policy")
	}
	if cli.Dead() {
		t.Error("single-attempt failure must not declare the provider dead")
	}
	if errors.Is(cli.Call("m", echoReq{}, nil), ErrProviderDead) {
		t.Error("broken (not dead) client returned ErrProviderDead")
	}
}
