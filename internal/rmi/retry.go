package rmi

import (
	"errors"
	"fmt"
	mrand "math/rand/v2"
	"time"
)

// ErrProviderDead marks a provider declared unreachable: every retry and
// reconnect attempt of a resilient client was exhausted. Callers detect
// it with errors.Is and degrade gracefully (the estimation layer falls
// back to the null estimator rather than aborting the simulation).
var ErrProviderDead = errors.New("rmi: provider dead")

// errClientClosed is returned for calls on a client after Close.
var errClientClosed = errors.New("rmi: client closed")

// RetryPolicy governs transport-failure retry for idempotent calls:
// exponential backoff with multiplicative growth, a ceiling, and
// deterministic jitter (drawn from the client's seeded source, so test
// runs reproduce exactly).
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per call, including the first.
	// Zero or one disables retry.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff. Zero means uncapped.
	MaxDelay time.Duration
	// Multiplier grows the backoff per retry; values below 1 mean 2.
	Multiplier float64
	// JitterFrac adds up to this fraction of the backoff as random extra
	// delay, decorrelating clients that fail together.
	JitterFrac float64
}

// DefaultRetry is a sane production policy: four attempts spanning
// roughly one second.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   5 * time.Millisecond,
	MaxDelay:    500 * time.Millisecond,
	Multiplier:  2,
	JitterFrac:  0.2,
}

// attempts normalizes MaxAttempts to at least one try.
func (p RetryPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before retry number n (1-based). jr supplies
// jitter; nil means none.
func (p RetryPolicy) backoff(n int, jr *mrand.Rand) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < n; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	out := time.Duration(d)
	if p.JitterFrac > 0 && jr != nil {
		if span := int64(d * p.JitterFrac); span > 0 {
			out += time.Duration(jr.Int64N(span))
		}
	}
	return out
}

// permanentError wraps a failure that must not be retried even though it
// is not a remote application error — e.g. a reply that arrived intact
// but cannot be decoded (retrying would re-execute the method for the
// same undecodable answer).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// retryable classifies a call failure. Remote application errors mean
// the method executed — never retry. Permanent client-side errors and
// terminal states (closed, dead) are equally final. Everything else is a
// transport fault whose request may or may not have executed; those are
// retried only for idempotent methods.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		return false
	}
	var pe *permanentError
	if errors.As(err, &pe) {
		return false
	}
	if errors.Is(err, errClientClosed) || errors.Is(err, ErrProviderDead) {
		return false
	}
	return true
}

// deadError builds the terminal error after retries are exhausted.
func deadError(method string, attempts int, last error) error {
	return fmt.Errorf("rmi: %s failed after %d attempts (%v): %w",
		method, attempts, last, ErrProviderDead)
}
