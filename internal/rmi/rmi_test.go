package rmi

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/security"
	"repro/internal/signal"
	"repro/internal/wire"
)

// echoReq and echoResp are simple test envelopes.
type echoReq struct {
	Bits []signal.Bit
	Note string
}

func (r echoReq) PortData() []any { return []any{r.Bits, r.Note} }

// echoReq and echoResp implement the binary payload interfaces so the
// in-package tests exercise the tagged AppendTo/DecodeFrom dispatch,
// not just the gob fallback inside binary frames.
func (r echoReq) AppendTo(b []byte) []byte {
	b = wire.AppendBits(b, r.Bits)
	return wire.AppendString(b, r.Note)
}

func (r *echoReq) DecodeFrom(buf []byte) error {
	var err error
	*r = echoReq{}
	if r.Bits, buf, err = wire.Bits(buf); err != nil {
		return err
	}
	if r.Note, buf, err = wire.String(buf); err != nil {
		return err
	}
	if len(buf) != 0 {
		return errors.New("trailing bytes after echoReq")
	}
	return nil
}

type echoResp struct {
	Bits  []signal.Bit
	Calls int
}

func (r echoResp) PortData() []any { return []any{r.Bits, r.Calls} }

func (r echoResp) AppendTo(b []byte) []byte {
	b = wire.AppendBits(b, r.Bits)
	return wire.AppendVarint(b, int64(r.Calls))
}

func (r *echoResp) DecodeFrom(buf []byte) error {
	var err error
	*r = echoResp{}
	if r.Bits, buf, err = wire.Bits(buf); err != nil {
		return err
	}
	var calls int64
	if calls, buf, err = wire.Varint(buf); err != nil {
		return err
	}
	r.Calls = int(calls)
	if len(buf) != 0 {
		return errors.New("trailing bytes after echoResp")
	}
	return nil
}

// leakResp fails to declare port data correctly.
type leakResp struct {
	Secret map[string]int
}

func (r leakResp) PortData() []any { return []any{r.Secret} }

// newTestPair starts a server with an echo method and returns a
// connected, authenticated client speaking the default (binary) codec.
func newTestPair(t *testing.T, configure func(*Server)) (*Server, *Client) {
	t.Helper()
	return newTestPairCodec(t, CodecBinary, configure)
}

// newTestPairCodec is newTestPair under an explicit wire codec.
func newTestPairCodec(t *testing.T, codec Codec, configure func(*Server)) (*Server, *Client) {
	t.Helper()
	srv := NewServer("prov")
	key, err := security.NewKey()
	if err != nil {
		t.Fatal(err)
	}
	srv.Authorize("user", key)
	calls := 0
	srv.Handle("echo", func(sess *Session, payload []byte) (any, error) {
		var req echoReq
		if err := Decode(payload, &req); err != nil {
			return nil, err
		}
		calls++
		sess.Charge(0.1)
		return echoResp{Bits: req.Bits, Calls: calls}, nil
	})
	srv.Handle("leak", func(sess *Session, payload []byte) (any, error) {
		return leakResp{Secret: map[string]int{"netlist": 1}}, nil
	})
	srv.Handle("boom", func(sess *Session, payload []byte) (any, error) {
		panic("handler exploded")
	})
	if configure != nil {
		configure(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := DialWith(addr, "user", key, Config{Codec: codec})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli
}

func TestCallRoundTrip(t *testing.T) {
	_, cli := newTestPair(t, nil)
	req := echoReq{Bits: []signal.Bit{signal.B1, signal.B0}, Note: "hi"}
	var resp echoResp
	if err := cli.Call("echo", req, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Bits) != 2 || resp.Bits[0] != signal.B1 {
		t.Errorf("echo payload wrong: %+v", resp)
	}
	if resp.Calls != 1 {
		t.Errorf("server call count = %d", resp.Calls)
	}
}

func TestSessionEstablishedAndBilled(t *testing.T) {
	srv, cli := newTestPair(t, nil)
	if cli.Session() == "" {
		t.Fatal("no session id")
	}
	var resp echoResp
	for i := 0; i < 3; i++ {
		if err := cli.Call("echo", echoReq{}, &resp); err != nil {
			t.Fatal(err)
		}
	}
	sessions := srv.Sessions()
	if len(sessions) != 1 {
		t.Fatalf("sessions = %d", len(sessions))
	}
	if fees := sessions[0].Fees(); fees < 0.299 || fees > 0.301 {
		t.Errorf("fees = %v, want 0.3", fees)
	}
	if sessions[0].Client != "user" {
		t.Errorf("session client = %q", sessions[0].Client)
	}
}

func TestAuthenticationRejectsWrongKey(t *testing.T) {
	srv := NewServer("prov")
	key, _ := security.NewKey()
	srv.Authorize("user", key)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	wrong, _ := security.NewKey()
	if _, err := Dial(addr, "user", wrong); err == nil {
		t.Fatal("wrong key accepted")
	}
	if _, err := Dial(addr, "stranger", key); err == nil {
		t.Fatal("unknown client accepted")
	}
	if _, err := Dial(addr, "user", key); err != nil {
		t.Fatalf("valid client rejected: %v", err)
	}
}

func TestUnknownMethod(t *testing.T) {
	_, cli := newTestPair(t, nil)
	var resp echoResp
	err := cli.Call("nope", echoReq{}, &resp)
	var re *RemoteError
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Fatalf("err = %v", err)
	}
	if !asRemote(err, &re) {
		t.Fatal("not a RemoteError")
	}
}

func asRemote(err error, target **RemoteError) bool {
	re, ok := err.(*RemoteError)
	if ok {
		*target = re
	}
	return ok
}

func TestHandlerPanicIsolated(t *testing.T) {
	_, cli := newTestPair(t, nil)
	var resp echoResp
	err := cli.Call("boom", echoReq{}, &resp)
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panic not surfaced: %v", err)
	}
	// The connection must survive a handler panic.
	if err := cli.Call("echo", echoReq{}, &resp); err != nil {
		t.Fatalf("connection dead after panic: %v", err)
	}
}

func TestMarshalPolicyBlocksOutboundRequest(t *testing.T) {
	_, cli := newTestPair(t, nil)
	// An envelope whose port data includes a disallowed type.
	bad := echoReqWithSecret{}
	var resp echoResp
	err := cli.Call("echo", bad, &resp)
	if err == nil || !strings.Contains(err.Error(), "IP boundary") {
		t.Fatalf("policy did not block outbound request: %v", err)
	}
}

type echoReqWithSecret struct{ Bits []signal.Bit }

func (r echoReqWithSecret) PortData() []any {
	return []any{map[string]int{"design": 1}}
}

func TestMarshalPolicyBlocksOutboundResponse(t *testing.T) {
	_, cli := newTestPair(t, nil)
	var resp leakResp
	err := cli.Call("leak", echoReq{}, &resp)
	if err == nil || !strings.Contains(err.Error(), "IP boundary") {
		t.Fatalf("policy did not block outbound response: %v", err)
	}
}

func TestEmulatedDelayAndMetering(t *testing.T) {
	var meter netsim.Meter
	_, cli := newTestPair(t, nil)
	cli.Profile = netsim.Profile{Name: "slow", OneWay: 5 * time.Millisecond}
	cli.Meter = &meter
	var resp echoResp
	start := time.Now()
	if err := cli.Call("echo", echoReq{}, &resp); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	if wall < 10*time.Millisecond {
		t.Errorf("call returned in %v; expected ≥ 10ms injected delay", wall)
	}
	if meter.Blocked() < 10*time.Millisecond {
		t.Errorf("metered blocked = %v", meter.Blocked())
	}
	if meter.Calls() != 1 || meter.Bytes() == 0 {
		t.Errorf("meter calls=%d bytes=%d", meter.Calls(), meter.Bytes())
	}
}

func TestAsyncGo(t *testing.T) {
	_, cli := newTestPair(t, nil)
	var resp echoResp
	p := cli.Go("echo", echoReq{Bits: []signal.Bit{signal.B1}}, &resp)
	<-p.Done
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
	if len(resp.Bits) != 1 {
		t.Error("async reply missing")
	}
}

func TestConcurrentCallsSerialized(t *testing.T) {
	_, cli := newTestPair(t, nil)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp echoResp
			errs[i] = cli.Call("echo", echoReq{Bits: []signal.Bit{signal.B0}}, &resp)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("call %d: %v", i, err)
		}
	}
}

func TestServeConnOverPipe(t *testing.T) {
	srv := NewServer("pipe")
	key, _ := security.NewKey()
	srv.Authorize("user", key)
	srv.Handle("echo", func(sess *Session, payload []byte) (any, error) {
		var req echoReq
		if err := Decode(payload, &req); err != nil {
			return nil, err
		}
		return echoResp{Bits: req.Bits}, nil
	})
	a, b := net.Pipe()
	go srv.ServeConn(a)
	cli, err := NewClient(b, "user", key)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	var resp echoResp
	if err := cli.Call("echo", echoReq{Bits: []signal.Bit{signal.BX}}, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Bits) != 1 || resp.Bits[0] != signal.BX {
		t.Error("pipe transport broke payload")
	}
}

func TestClosedClientRejectsCalls(t *testing.T) {
	_, cli := newTestPair(t, nil)
	cli.Close()
	var resp echoResp
	if err := cli.Call("echo", echoReq{}, &resp); err == nil {
		t.Error("closed client accepted call")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := echoReq{Bits: []signal.Bit{signal.B0, signal.B1, signal.BZ}, Note: "n"}
	b, err := Encode(in)
	if err != nil {
		t.Fatal(err)
	}
	var out echoReq
	if err := Decode(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Note != in.Note || len(out.Bits) != 3 || out.Bits[2] != signal.BZ {
		t.Errorf("round trip = %+v", out)
	}
}

func TestDuplicateMethodPanics(t *testing.T) {
	srv := NewServer("dup")
	srv.Handle("m", func(*Session, []byte) (any, error) { return nil, nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate method did not panic")
		}
	}()
	srv.Handle("m", func(*Session, []byte) (any, error) { return nil, nil })
}

func TestCallTimeout(t *testing.T) {
	srv := NewServer("slow")
	key, _ := security.NewKey()
	srv.Authorize("user", key)
	block := make(chan struct{})
	srv.Handle("hang", func(sess *Session, payload []byte) (any, error) {
		<-block
		return echoResp{}, nil
	})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	defer close(block)
	cli, err := Dial(addr, "user", key)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.Timeout = 50 * time.Millisecond
	var resp echoResp
	start := time.Now()
	err = cli.Call("hang", echoReq{}, &resp)
	if err == nil {
		t.Fatal("hung call returned")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
	// A timed-out client is closed: further calls fail fast.
	if err := cli.Call("hang", echoReq{}, &resp); err == nil {
		t.Fatal("timed-out client accepted another call")
	}
}
