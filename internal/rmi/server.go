package rmi

import (
	"crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/security"
)

// Handler serves one remote method: it decodes its arguments from the
// payload and returns a response envelope (which must implement PortData
// so the provider-side marshalling policy can vet it).
type Handler func(sess *Session, payload []byte) (any, error)

// Session is the server-side state of one authenticated client
// connection: the component instances the client has bound, accumulated
// fees, and arbitrary per-session values.
type Session struct {
	ID     string
	Client string

	mu     sync.Mutex
	values map[string]any
	fees   float64
}

// Put stores a per-session value.
func (s *Session) Put(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.values == nil {
		s.values = make(map[string]any)
	}
	s.values[key] = v
}

// Get retrieves a per-session value.
func (s *Session) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.values[key]
	return v, ok
}

// Charge adds cents to the session's bill.
func (s *Session) Charge(cents float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fees += cents
}

// Fees returns the accumulated bill in cents.
func (s *Session) Fees() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fees
}

// Server is a gocad provider-side RPC endpoint.
type Server struct {
	Name string
	// Policy vets outbound responses; nil uses security.DefaultPolicy.
	Policy *security.MarshalPolicy
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
	// IdleTimeout, when positive, bounds how long a connection may sit
	// between requests (and how long the handshake may take) before the
	// server drops it — dead or wedged clients cannot pin goroutines
	// forever. Clients reconnect transparently when resilient.
	IdleTimeout time.Duration
	// SessionWorkers bounds concurrent handler execution per client
	// connection. With a pipelined client, N requests can be on the wire
	// at once; a value above 1 dispatches them to a per-session worker
	// pool so they don't re-serialize at the provider, with responses
	// written back (in completion order) through a single response
	// writer. 0 or 1 keeps the legacy serial request/response loop.
	// Methods registered through HandleOrdered always execute in arrival
	// order relative to one another, regardless of this setting.
	SessionWorkers int

	mu       sync.Mutex
	methods  map[string]Handler
	ordered  map[string]bool
	keys     map[string]security.Key
	sessions map[string]*Session
	nextSess uint64
	closed   bool
	ln       net.Listener
}

// NewServer returns an empty server.
func NewServer(name string) *Server {
	return &Server{
		Name:     name,
		methods:  make(map[string]Handler),
		ordered:  make(map[string]bool),
		keys:     make(map[string]security.Key),
		sessions: make(map[string]*Session),
	}
}

// Handle registers a method handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.methods[method]; dup {
		panic(fmt.Sprintf("rmi: duplicate method %q", method))
	}
	s.methods[method] = h
}

// HandleOrdered registers a handler whose invocations must execute in
// request arrival order, serialized with respect to every other ordered
// method on the same session. Stateful methods — the provider's power
// and timing simulators advance per pattern batch — need this so a
// pipelined client's results are bit-identical to stop-and-wait;
// stateless methods registered with Handle run concurrently around them.
func (s *Server) HandleOrdered(method string, h Handler) {
	s.Handle(method, h)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ordered[method] = true
}

// isOrdered reports whether a method demands arrival-order execution.
func (s *Server) isOrdered(method string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ordered[method]
}

// Authorize registers a client's shared key. Only authorized clients can
// open sessions.
func (s *Server) Authorize(client string, key security.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[client] = key
}

// Sessions returns a snapshot of the open sessions.
func (s *Server) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// Serve accepts connections until the listener closes. It is typically
// run on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Listen starts the server on a TCP address and returns the bound
// address; Serve runs on a background goroutine.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(ln); err != nil && s.Logf != nil {
			s.Logf("rmi server %s: %v", s.Name, err)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		return s.ln.Close()
	}
	return nil
}

// logf logs through Logf; the default is silence.
func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ServeConn runs the protocol on one connection (used directly by tests
// and in-process deployments via net.Pipe).
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	// Handshake.
	if s.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
	}
	var hello frame
	if err := dec.Decode(&hello); err != nil {
		return
	}
	sess, err := s.handshake(&hello)
	welcome := frame{Kind: kindWelcome}
	if err != nil {
		welcome.Err = err.Error()
		_ = enc.Encode(&welcome)
		return
	}
	welcome.Session = sess.ID
	if err := enc.Encode(&welcome); err != nil {
		return
	}

	if s.SessionWorkers > 1 {
		s.serveConcurrent(conn, dec, enc, sess)
		return
	}
	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		var req frame
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("rmi server %s: %v", s.Name, err)
			}
			return
		}
		resp := s.dispatch(sess, &req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

// serveConcurrent runs the post-handshake request loop with per-session
// concurrent dispatch: this goroutine decodes requests and routes them,
// a bounded worker pool executes unordered handlers in parallel, a
// single ordered lane executes HandleOrdered methods in arrival order,
// and one response writer serializes all responses back onto the gob
// stream in completion order (the pipelined client correlates them by
// frame ID, so response order is free).
func (s *Server) serveConcurrent(conn net.Conn, dec *gob.Decoder, enc *gob.Encoder, sess *Session) {
	workers := s.SessionWorkers
	respCh := make(chan *frame, workers+1)
	workCh := make(chan *frame)
	orderCh := make(chan *frame, workers)
	writerDone := make(chan struct{})

	go func() { // response writer: sole owner of enc
		defer close(writerDone)
		for resp := range respCh {
			if err := enc.Encode(resp); err != nil {
				// The write side is gone; close the conn so the request
				// loop stops, then drain so no handler blocks on respCh.
				conn.Close()
				for range respCh {
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range workCh {
				respCh <- s.dispatch(sess, req)
			}
		}()
	}
	wg.Add(1)
	go func() { // ordered lane: arrival-order execution for stateful methods
		defer wg.Done()
		for req := range orderCh {
			respCh <- s.dispatch(sess, req)
		}
	}()

	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		req := new(frame)
		if err := dec.Decode(req); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("rmi server %s: %v", s.Name, err)
			}
			break
		}
		if s.isOrdered(req.Method) {
			orderCh <- req
		} else {
			workCh <- req
		}
	}
	close(workCh)
	close(orderCh)
	wg.Wait()
	close(respCh)
	<-writerDone
}

// handshake authenticates the hello frame and opens a session.
func (s *Server) handshake(hello *frame) (*Session, error) {
	if hello.Kind != kindHello {
		return nil, errors.New("rmi: protocol error: expected hello")
	}
	s.mu.Lock()
	key, ok := s.keys[hello.Client]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rmi: unknown client %q", hello.Client)
	}
	msg := append(append([]byte(nil), hello.Nonce...), hello.Client...)
	if !key.Verify(msg, hello.Tag) {
		return nil, fmt.Errorf("rmi: authentication failed for %q", hello.Client)
	}
	idBytes := make([]byte, 8)
	if _, err := rand.Read(idBytes); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSess++
	sess := &Session{
		ID:     fmt.Sprintf("%s-%d-%s", s.Name, s.nextSess, hex.EncodeToString(idBytes)),
		Client: hello.Client,
	}
	s.sessions[sess.ID] = sess
	return sess, nil
}

// dispatch runs one request through its handler, vetting the response
// against the provider's marshalling policy.
func (s *Server) dispatch(sess *Session, req *frame) *frame {
	resp := &frame{Kind: kindResponse, ID: req.ID}
	if req.Kind != kindRequest || req.Session != sess.ID {
		resp.Err = "rmi: protocol error"
		return resp
	}
	s.mu.Lock()
	h, ok := s.methods[req.Method]
	s.mu.Unlock()
	if !ok {
		resp.Err = fmt.Sprintf("rmi: unknown method %q", req.Method)
		return resp
	}
	reply, err := func() (reply any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("rmi: handler %s panicked: %v", req.Method, r)
			}
		}()
		return h(sess, req.Payload)
	}()
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	policy := s.Policy
	if policy == nil {
		policy = &security.DefaultPolicy
	}
	pd, ok := reply.(PortData)
	if !ok {
		resp.Err = fmt.Sprintf("rmi: response %T does not declare its port data", reply)
		return resp
	}
	for _, v := range pd.PortData() {
		if err := policy.CheckOutbound(v); err != nil {
			resp.Err = err.Error()
			return resp
		}
	}
	payload, err := Encode(reply)
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	resp.Payload = payload
	return resp
}
