package rmi

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/security"
)

// CodecPolicy restricts which wire codecs a server accepts. The zero
// value sniffs the codec per connection (wire-format-v1 frames open with
// a magic byte no gob stream can produce) and accepts both.
type CodecPolicy int

// The accepted-codec policies.
const (
	CodecAuto CodecPolicy = iota
	CodecBinaryOnly
	CodecGobOnly
)

// ParseCodecPolicy maps a server -codec flag value to a policy.
func ParseCodecPolicy(s string) (CodecPolicy, error) {
	switch s {
	case "", "auto":
		return CodecAuto, nil
	case "binary":
		return CodecBinaryOnly, nil
	case "gob":
		return CodecGobOnly, nil
	}
	return 0, fmt.Errorf("rmi: unknown codec policy %q (want auto, binary or gob)", s)
}

// Handler serves one remote method: it decodes its arguments from the
// payload and returns a response envelope (which must implement PortData
// so the provider-side marshalling policy can vet it).
type Handler func(sess *Session, payload []byte) (any, error)

// Session is the server-side state of one authenticated client
// connection: the component instances the client has bound, accumulated
// fees, and arbitrary per-session values.
type Session struct {
	ID     string
	Client string

	mu     sync.Mutex
	values map[string]any
	fees   float64
}

// Put stores a per-session value.
func (s *Session) Put(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.values == nil {
		s.values = make(map[string]any)
	}
	s.values[key] = v
}

// Get retrieves a per-session value.
func (s *Session) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.values[key]
	return v, ok
}

// Charge adds cents to the session's bill.
func (s *Session) Charge(cents float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fees += cents
}

// Fees returns the accumulated bill in cents.
func (s *Session) Fees() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fees
}

// Server is a gocad provider-side RPC endpoint.
type Server struct {
	Name string
	// Policy vets outbound responses; nil uses security.DefaultPolicy.
	Policy *security.MarshalPolicy
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
	// IdleTimeout, when positive, bounds how long a connection may sit
	// between requests (and how long the handshake may take) before the
	// server drops it — dead or wedged clients cannot pin goroutines
	// forever. Clients reconnect transparently when resilient.
	IdleTimeout time.Duration
	// SessionWorkers bounds concurrent handler execution per client
	// connection. With a pipelined client, N requests can be on the wire
	// at once; a value above 1 dispatches them to a per-session worker
	// pool so they don't re-serialize at the provider, with responses
	// written back (in completion order) through a single response
	// writer. 0 or 1 keeps the legacy serial request/response loop.
	// Methods registered through HandleOrdered always execute in arrival
	// order relative to one another, regardless of this setting.
	SessionWorkers int
	// Codecs restricts the wire codecs this server accepts; the zero
	// value auto-detects per connection. A connection speaking a refused
	// codec is answered with an error welcome in its own codec and
	// dropped.
	Codecs CodecPolicy

	mu       sync.Mutex
	methods  map[string]Handler
	ordered  map[string]bool
	keys     map[string]security.Key
	sessions map[string]*Session
	conns    map[net.Conn]*connState
	nextSess uint64
	closed   bool
	ln       net.Listener
}

// connState tracks one live connection's in-flight request count, the
// unit graceful drain waits on: a request is in flight from the moment
// it is decoded until its response has been written back.
type connState struct {
	inflight atomic.Int64
}

// NewServer returns an empty server.
func NewServer(name string) *Server {
	return &Server{
		Name:     name,
		methods:  make(map[string]Handler),
		ordered:  make(map[string]bool),
		keys:     make(map[string]security.Key),
		sessions: make(map[string]*Session),
		conns:    make(map[net.Conn]*connState),
	}
}

// Handle registers a method handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.methods[method]; dup {
		panic(fmt.Sprintf("rmi: duplicate method %q", method))
	}
	s.methods[method] = h
}

// HandleOrdered registers a handler whose invocations must execute in
// request arrival order, serialized with respect to every other ordered
// method on the same session. Stateful methods — the provider's power
// and timing simulators advance per pattern batch — need this so a
// pipelined client's results are bit-identical to stop-and-wait;
// stateless methods registered with Handle run concurrently around them.
func (s *Server) HandleOrdered(method string, h Handler) {
	s.Handle(method, h)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ordered[method] = true
}

// isOrdered reports whether a method demands arrival-order execution.
func (s *Server) isOrdered(method string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ordered[method]
}

// Authorize registers a client's shared key. Only authorized clients can
// open sessions.
func (s *Server) Authorize(client string, key security.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[client] = key
}

// Sessions returns a snapshot of the open sessions.
func (s *Server) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// Serve accepts connections until the listener closes. It is typically
// run on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Listen starts the server on a TCP address and returns the bound
// address; Serve runs on a background goroutine.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(ln); err != nil && s.Logf != nil {
			s.Logf("rmi server %s: %v", s.Name, err)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		// Drain already closed the listener on the graceful path; a
		// second close is a clean no-op, not a shutdown failure.
		if err := s.ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			return err
		}
	}
	return nil
}

// register enrolls a live connection in the drain ledger; it returns
// nil when the server is already closed or draining (the caller must
// abandon the connection without serving it).
func (s *Server) register(conn net.Conn) *connState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	st := &connState{}
	s.conns[conn] = st
	return st
}

// unregister removes a connection from the drain ledger.
func (s *Server) unregister(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// Drain shuts the server down gracefully: the listener closes (no new
// sessions), every in-flight request — decoded but not yet answered —
// runs to completion and has its response written, and each connection
// is closed the moment it goes idle. A connection still mid-request at
// the timeout is force-closed, which a resilient client experiences as
// a poisoned epoch; within the timeout, a draining server never cuts a
// batch mid-flight. Drain returns nil when every connection finished
// cleanly, and an error naming the force-closed count otherwise.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		for conn, st := range s.conns {
			if st.inflight.Load() == 0 {
				conn.Close()
				delete(s.conns, conn)
			}
		}
		busy := len(s.conns)
		s.mu.Unlock()
		if busy == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.mu.Lock()
	forced := len(s.conns)
	for conn := range s.conns {
		conn.Close()
		delete(s.conns, conn)
	}
	s.mu.Unlock()
	return fmt.Errorf("rmi: drain timed out after %v: force-closed %d busy connection(s)", timeout, forced)
}

// logf logs through Logf; the default is silence.
func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ServeConn runs the protocol on one connection (used directly by tests
// and in-process deployments via net.Pipe).
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	st := s.register(conn)
	if st == nil {
		return // closed or draining: no new sessions
	}
	defer s.unregister(conn)

	// Codec detection: the first byte of a wire-format-v1 frame is the
	// 0x00 magic, which no gob stream can open with (gob's leading byte
	// is a message length in 1..127 or a negated byte count near 0xFF).
	if s.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
	}
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	codec := CodecGob
	if first[0] == binMagic0 {
		codec = CodecBinary
	}
	r := io.MultiReader(bytes.NewReader(first[:]), conn)
	var fw frameEncoder
	var fr frameDecoder
	if codec == CodecBinary {
		fw = &binFrameWriter{w: conn}
		// Payloads may alias the reader buffer only on the serial loop,
		// where dispatch completes before the next frame is read.
		fr = &binFrameReader{r: r, aliasPayload: s.SessionWorkers <= 1}
	} else {
		g := &gobFrameCodec{enc: gob.NewEncoder(conn), dec: gob.NewDecoder(r)}
		fw, fr = g, g
	}

	// Handshake.
	var hello frame
	if err := fr.readFrame(&hello); err != nil {
		return
	}
	sess, err := s.handshake(&hello)
	if err == nil && !s.codecAccepted(codec) {
		err = fmt.Errorf("rmi: server does not accept the %s codec", codec)
	}
	welcome := frame{Kind: kindWelcome}
	if err != nil {
		welcome.Err = err.Error()
		_ = fw.writeFrame(&welcome)
		return
	}
	welcome.Session = sess.ID
	if err := fw.writeFrame(&welcome); err != nil {
		return
	}

	if s.SessionWorkers > 1 {
		s.serveConcurrent(conn, st, fr, fw, sess, codec)
		return
	}
	req := getFrame()
	defer putFrame(req)
	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		if err := fr.readFrame(req); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("rmi server %s: %v", s.Name, err)
			}
			return
		}
		st.inflight.Add(1)
		resp := s.dispatch(sess, req, codec)
		err := fw.writeFrame(resp)
		putFrame(resp)
		st.inflight.Add(-1)
		if err != nil {
			return
		}
	}
}

// codecAccepted applies the server's codec policy.
func (s *Server) codecAccepted(c Codec) bool {
	switch s.Codecs {
	case CodecBinaryOnly:
		return c == CodecBinary
	case CodecGobOnly:
		return c == CodecGob
	}
	return true
}

// serveConcurrent runs the post-handshake request loop with per-session
// concurrent dispatch: this goroutine decodes requests and routes them,
// a bounded worker pool executes unordered handlers in parallel, a
// single ordered lane executes HandleOrdered methods in arrival order,
// and one response writer serializes all responses back onto the framed
// stream in completion order (the pipelined client correlates them by
// frame ID, so response order is free).
func (s *Server) serveConcurrent(conn net.Conn, st *connState, fr frameDecoder, fw frameEncoder, sess *Session, codec Codec) {
	workers := s.SessionWorkers
	respCh := make(chan *frame, workers+1)
	workCh := make(chan *frame)
	orderCh := make(chan *frame, workers)
	writerDone := make(chan struct{})

	go func() { // response writer: sole owner of the frame encoder
		defer close(writerDone)
		for resp := range respCh {
			err := fw.writeFrame(resp)
			putFrame(resp)
			st.inflight.Add(-1) // answered (or abandoned): no longer drain-relevant
			if err != nil {
				// The write side is gone; close the conn so the request
				// loop stops, then drain so no handler blocks on respCh.
				conn.Close()
				for resp := range respCh {
					putFrame(resp)
					st.inflight.Add(-1)
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range workCh {
				resp := s.dispatch(sess, req, codec)
				putFrame(req)
				respCh <- resp
			}
		}()
	}
	wg.Add(1)
	go func() { // ordered lane: arrival-order execution for stateful methods
		defer wg.Done()
		for req := range orderCh {
			resp := s.dispatch(sess, req, codec)
			putFrame(req)
			respCh <- resp
		}
	}()

	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		req := getFrame()
		if err := fr.readFrame(req); err != nil {
			putFrame(req)
			if !errors.Is(err, io.EOF) {
				s.logf("rmi server %s: %v", s.Name, err)
			}
			break
		}
		st.inflight.Add(1)
		if s.isOrdered(req.Method) {
			orderCh <- req
		} else {
			workCh <- req
		}
	}
	close(workCh)
	close(orderCh)
	wg.Wait()
	close(respCh)
	<-writerDone
}

// handshake authenticates the hello frame and opens a session.
func (s *Server) handshake(hello *frame) (*Session, error) {
	if hello.Kind != kindHello {
		return nil, errors.New("rmi: protocol error: expected hello")
	}
	s.mu.Lock()
	key, ok := s.keys[hello.Client]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rmi: unknown client %q", hello.Client)
	}
	msg := append(append([]byte(nil), hello.Nonce...), hello.Client...)
	if !key.Verify(msg, hello.Tag) {
		return nil, fmt.Errorf("rmi: authentication failed for %q", hello.Client)
	}
	idBytes := make([]byte, 8)
	if _, err := rand.Read(idBytes); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSess++
	sess := &Session{
		ID:     fmt.Sprintf("%s-%d-%s", s.Name, s.nextSess, hex.EncodeToString(idBytes)),
		Client: hello.Client,
	}
	s.sessions[sess.ID] = sess
	return sess, nil
}

// framePool recycles request and response frames (and their payload
// buffers) across the serve loops. A frame returns to the pool only
// once its single owner is done with it: requests after dispatch
// returns, responses after writeFrame — both loops are strictly
// sequential per frame, so no pooled frame is ever aliased.
var framePool = sync.Pool{New: func() any { return new(frame) }}

func getFrame() *frame { return framePool.Get().(*frame) }

// putFrame resets a frame for reuse, keeping the payload buffer's
// capacity (the binary reader and the payload encoder both append into
// it). Every non-payload field is zeroed so a pooled frame can go
// straight into a gob decode, which leaves absent fields untouched.
func putFrame(f *frame) {
	pl := f.Payload
	*f = frame{}
	f.Payload = pl[:0]
	framePool.Put(f)
}

// dispatch runs one request through its handler, vetting the response
// against the provider's marshalling policy. The reply payload is
// encoded under the connection's codec, so binary peers get the
// hand-written encodings and gob peers the legacy bytes. The returned
// frame comes from framePool; the caller releases it after writing.
func (s *Server) dispatch(sess *Session, req *frame, codec Codec) *frame {
	resp := getFrame()
	resp.Kind, resp.ID = kindResponse, req.ID
	if req.Kind != kindRequest || req.Session != sess.ID {
		resp.Err = "rmi: protocol error"
		return resp
	}
	s.mu.Lock()
	h, ok := s.methods[req.Method]
	s.mu.Unlock()
	if !ok {
		resp.Err = fmt.Sprintf("rmi: unknown method %q", req.Method)
		return resp
	}
	reply, err := func() (reply any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("rmi: handler %s panicked: %v", req.Method, r)
			}
		}()
		return h(sess, req.Payload)
	}()
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	policy := s.Policy
	if policy == nil {
		policy = &security.DefaultPolicy
	}
	pd, ok := reply.(PortData)
	if !ok {
		resp.Err = fmt.Sprintf("rmi: response %T does not declare its port data", reply)
		return resp
	}
	if err := checkOutbound(policy, pd); err != nil {
		resp.Err = err.Error()
		return resp
	}
	payload, err := appendPayload(resp.Payload[:0], reply, codec)
	if err != nil {
		resp.Err = err.Error()
		resp.Payload = resp.Payload[:0]
		return resp
	}
	resp.Payload = payload
	return resp
}
