package rmi

import (
	"bytes"
	"crypto/rand"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/security"
)

// CodecPolicy restricts which wire codecs a server accepts. The zero
// value sniffs the codec per connection (wire-format-v1 frames open with
// a magic byte no gob stream can produce) and accepts both.
type CodecPolicy int

// The accepted-codec policies.
const (
	CodecAuto CodecPolicy = iota
	CodecBinaryOnly
	CodecGobOnly
)

// ParseCodecPolicy maps a server -codec flag value to a policy.
func ParseCodecPolicy(s string) (CodecPolicy, error) {
	switch s {
	case "", "auto":
		return CodecAuto, nil
	case "binary":
		return CodecBinaryOnly, nil
	case "gob":
		return CodecGobOnly, nil
	}
	return 0, fmt.Errorf("rmi: unknown codec policy %q (want auto, binary or gob)", s)
}

// Handler serves one remote method: it decodes its arguments from the
// payload and returns a response envelope (which must implement PortData
// so the provider-side marshalling policy can vet it).
type Handler func(sess *Session, payload []byte) (any, error)

// DefaultHandshakeTimeout bounds the pre-session phase of a connection
// — first byte, hello frame, welcome write — when no explicit
// HandshakeTimeout is configured. A client that connects and never
// speaks must not park a server goroutine forever.
const DefaultHandshakeTimeout = 15 * time.Second

// DefaultLogBurst is how many diagnostic lines per second logf emits
// before sampling kicks in (see Server.LogBurst).
const DefaultLogBurst = 50

// ServerHooks lets a front end (internal/gateway) observe and vet the
// server's connection lifecycle without owning the protocol. All fields
// are optional; install the struct before Serve — it is read without
// synchronization once connections are live.
//
// Lifecycle guarantees: when Admit returns nil, the session opens and
// SessionOpen fires exactly once; SessionClose then fires exactly once
// when the connection ends, on every exit path (clean EOF, read/write
// error, idle or write timeout, codec refusal, drain). An Admit error
// rejects the handshake: its text travels to the client in the welcome
// frame and no session hooks fire.
type ServerHooks struct {
	// Admit vets an authenticated hello before its session opens. It
	// runs after HMAC verification, so client is a trusted identity.
	Admit func(client string, remote net.Addr) error
	// SessionOpen observes a freshly opened session.
	SessionOpen func(sess *Session)
	// SessionClose observes a session's end (its connection closed).
	SessionClose func(sess *Session)
	// BeforeCall vets one decoded request before dispatch; a non-nil
	// error is returned to the caller as the call's remote error and the
	// handler never runs. It may block (rate-limit throttling); the
	// connection's other in-flight requests proceed independently on the
	// concurrent dispatch path.
	BeforeCall func(sess *Session, method string, payloadBytes int) error
	// AfterCall observes one completed dispatch (handler plus response
	// vetting), including calls BeforeCall rejected.
	AfterCall func(sess *Session, method string, payloadBytes int, d time.Duration, failed bool)
}

// Session is the server-side state of one authenticated client
// connection: the component instances the client has bound, accumulated
// fees, and arbitrary per-session values.
type Session struct {
	ID     string
	Client string

	mu     sync.Mutex
	values map[string]any
	fees   float64
}

// Put stores a per-session value.
func (s *Session) Put(key string, v any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.values == nil {
		s.values = make(map[string]any)
	}
	s.values[key] = v
}

// Get retrieves a per-session value.
func (s *Session) Get(key string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.values[key]
	return v, ok
}

// Charge adds cents to the session's bill.
func (s *Session) Charge(cents float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fees += cents
}

// Fees returns the accumulated bill in cents.
func (s *Session) Fees() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fees
}

// Server is a gocad provider-side RPC endpoint.
type Server struct {
	Name string
	// Policy vets outbound responses; nil uses security.DefaultPolicy.
	Policy *security.MarshalPolicy
	// Logf, when non-nil, receives diagnostic messages.
	Logf func(format string, args ...any)
	// IdleTimeout, when positive, bounds how long a connection may sit
	// between requests before the server drops it — dead or wedged
	// clients cannot pin goroutines forever. Clients reconnect
	// transparently when resilient.
	IdleTimeout time.Duration
	// HandshakeTimeout bounds the pre-session phase (codec byte, hello
	// frame, welcome write). Zero selects DefaultHandshakeTimeout — the
	// hang a never-speaking dialer used to cause is closed by default;
	// negative disables the deadline (trusted in-process transports).
	HandshakeTimeout time.Duration
	// WriteTimeout, when positive, bounds each response frame write, so
	// a client that stops reading (filling its receive window) cannot
	// park the server's writer behind a full send buffer forever.
	WriteTimeout time.Duration
	// Hooks, when non-nil, observes and vets the connection lifecycle
	// (admission control, per-call quotas, metering). Set before Serve.
	Hooks *ServerHooks
	// LogBurst bounds how many logf lines per second reach Logf before
	// sampling: a reject storm must not turn the log into the
	// bottleneck. Zero selects DefaultLogBurst; negative disables the
	// limit. Suppressed lines are counted and reported in a summary
	// line when the next window opens.
	LogBurst int
	// SessionWorkers bounds concurrent handler execution per client
	// connection. With a pipelined client, N requests can be on the wire
	// at once; a value above 1 dispatches them to a per-session worker
	// pool so they don't re-serialize at the provider, with responses
	// written back (in completion order) through a single response
	// writer. 0 or 1 keeps the legacy serial request/response loop.
	// Methods registered through HandleOrdered always execute in arrival
	// order relative to one another, regardless of this setting.
	SessionWorkers int
	// Codecs restricts the wire codecs this server accepts; the zero
	// value auto-detects per connection. A connection speaking a refused
	// codec is answered with an error welcome in its own codec and
	// dropped.
	Codecs CodecPolicy

	mu       sync.Mutex
	methods  map[string]Handler
	ordered  map[string]bool
	keys     map[string]security.Key
	sessions map[string]*Session
	conns    map[net.Conn]*connState
	nextSess uint64
	closed   bool
	ln       net.Listener

	loglim logLimiter
}

// logLimiter is a per-second token window over diagnostic output: at
// most burst lines per wall-clock second, the rest counted and folded
// into one summary line when the next window opens.
type logLimiter struct {
	mu         sync.Mutex
	window     int64 // unix second of the current window
	emitted    int
	suppressed uint64
}

// allow reports whether one line may be emitted now. A positive
// suppressed return carries the count of lines dropped in the previous
// window (the caller should emit one summary for them).
func (l *logLimiter) allow(now time.Time, burst int) (ok bool, suppressed uint64) {
	sec := now.Unix()
	l.mu.Lock()
	defer l.mu.Unlock()
	if sec != l.window {
		l.window = sec
		l.emitted = 0
		suppressed = l.suppressed
		l.suppressed = 0
	}
	if l.emitted < burst {
		l.emitted++
		return true, suppressed
	}
	l.suppressed++
	return false, suppressed
}

// connState tracks one live connection's in-flight request count, the
// unit graceful drain waits on: a request is in flight from the moment
// it is decoded until its response has been written back.
type connState struct {
	inflight atomic.Int64
}

// NewServer returns an empty server.
func NewServer(name string) *Server {
	return &Server{
		Name:     name,
		methods:  make(map[string]Handler),
		ordered:  make(map[string]bool),
		keys:     make(map[string]security.Key),
		sessions: make(map[string]*Session),
		conns:    make(map[net.Conn]*connState),
	}
}

// Handle registers a method handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.methods[method]; dup {
		panic(fmt.Sprintf("rmi: duplicate method %q", method))
	}
	s.methods[method] = h
}

// HandleOrdered registers a handler whose invocations must execute in
// request arrival order, serialized with respect to every other ordered
// method on the same session. Stateful methods — the provider's power
// and timing simulators advance per pattern batch — need this so a
// pipelined client's results are bit-identical to stop-and-wait;
// stateless methods registered with Handle run concurrently around them.
func (s *Server) HandleOrdered(method string, h Handler) {
	s.Handle(method, h)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ordered[method] = true
}

// isOrdered reports whether a method demands arrival-order execution.
func (s *Server) isOrdered(method string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ordered[method]
}

// Authorize registers a client's shared key. Only authorized clients can
// open sessions.
func (s *Server) Authorize(client string, key security.Key) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keys[client] = key
}

// Sessions returns a snapshot of the open sessions.
func (s *Server) Sessions() []*Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, sess)
	}
	return out
}

// Serve accepts connections until the listener closes. It is typically
// run on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		go s.ServeConn(conn)
	}
}

// Listen starts the server on a TCP address and returns the bound
// address; Serve runs on a background goroutine.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		if err := s.Serve(ln); err != nil && s.Logf != nil {
			s.Logf("rmi server %s: %v", s.Name, err)
		}
	}()
	return ln.Addr().String(), nil
}

// Close stops accepting connections.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.ln != nil {
		// Drain already closed the listener on the graceful path; a
		// second close is a clean no-op, not a shutdown failure.
		if err := s.ln.Close(); err != nil && !errors.Is(err, net.ErrClosed) {
			return err
		}
	}
	return nil
}

// register enrolls a live connection in the drain ledger; it returns
// nil when the server is already closed or draining (the caller must
// abandon the connection without serving it).
func (s *Server) register(conn net.Conn) *connState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	st := &connState{}
	s.conns[conn] = st
	return st
}

// unregister removes a connection from the drain ledger.
func (s *Server) unregister(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// Drain shuts the server down gracefully: the listener closes (no new
// sessions), every in-flight request — decoded but not yet answered —
// runs to completion and has its response written, and each connection
// is closed the moment it goes idle. A connection still mid-request at
// the timeout is force-closed, which a resilient client experiences as
// a poisoned epoch; within the timeout, a draining server never cuts a
// batch mid-flight. Drain returns nil when every connection finished
// cleanly, and an error naming the force-closed count otherwise.
func (s *Server) Drain(timeout time.Duration) error {
	s.mu.Lock()
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	deadline := time.Now().Add(timeout)
	for {
		s.mu.Lock()
		for conn, st := range s.conns {
			if st.inflight.Load() == 0 {
				conn.Close()
				delete(s.conns, conn)
			}
		}
		busy := len(s.conns)
		s.mu.Unlock()
		if busy == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	s.mu.Lock()
	forced := len(s.conns)
	for conn := range s.conns {
		conn.Close()
		delete(s.conns, conn)
	}
	s.mu.Unlock()
	return fmt.Errorf("rmi: drain timed out after %v: force-closed %d busy connection(s)", timeout, forced)
}

// logf logs through Logf; the default is silence. Output is
// rate-limited to LogBurst lines per second (see the field) so a storm
// of per-connection failures — a reject flood against the gateway, a
// port scanner spraying garbage — cannot make logging itself the
// bottleneck. Dropped lines surface as one summary when the next
// window opens.
func (s *Server) logf(format string, args ...any) {
	if s.Logf == nil {
		return
	}
	burst := s.LogBurst
	if burst == 0 {
		burst = DefaultLogBurst
	}
	if burst < 0 {
		s.Logf(format, args...)
		return
	}
	ok, suppressed := s.loglim.allow(time.Now(), burst)
	if suppressed > 0 {
		s.Logf("rmi server %s: %d log line(s) suppressed by rate limit (%d/s)", s.Name, suppressed, burst)
	}
	if ok {
		s.Logf(format, args...)
	}
}

// ServeConn runs the protocol on one connection (used directly by tests
// and in-process deployments via net.Pipe).
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	st := s.register(conn)
	if st == nil {
		return // closed or draining: no new sessions
	}
	defer s.unregister(conn)

	// The whole pre-session phase — codec byte, hello frame, welcome
	// write — runs under the handshake deadline, so a dialer that never
	// speaks (or never reads the welcome) cannot park this goroutine.
	if d := s.handshakeTimeout(); d > 0 {
		_ = conn.SetDeadline(time.Now().Add(d))
	}

	// Codec detection: the first byte of a wire-format-v1 frame is the
	// 0x00 magic, which no gob stream can open with (gob's leading byte
	// is a message length in 1..127 or a negated byte count near 0xFF).
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	codec := CodecGob
	if first[0] == binMagic0 {
		codec = CodecBinary
	}
	r := io.MultiReader(bytes.NewReader(first[:]), conn)
	var fw frameEncoder
	var fr frameDecoder
	if codec == CodecBinary {
		fw = &binFrameWriter{w: conn}
		// Payloads may alias the reader buffer only on the serial loop,
		// where dispatch completes before the next frame is read.
		fr = &binFrameReader{r: r, aliasPayload: s.SessionWorkers <= 1}
	} else {
		g := &gobFrameCodec{enc: gob.NewEncoder(conn), dec: gob.NewDecoder(r)}
		fw, fr = g, g
	}

	// Handshake.
	var hello frame
	if err := fr.readFrame(&hello); err != nil {
		return
	}
	sess, err := s.handshake(&hello, conn.RemoteAddr())
	if err == nil && !s.codecAccepted(codec) {
		err = fmt.Errorf("rmi: server does not accept the %s codec", codec)
	}
	welcome := frame{Kind: kindWelcome}
	if err != nil {
		if sess != nil {
			s.closeSession(sess)
		}
		s.logf("rmi server %s: handshake rejected from %v: %v", s.Name, conn.RemoteAddr(), err)
		welcome.Err = err.Error()
		_ = fw.writeFrame(&welcome)
		return
	}
	defer s.closeSession(sess)
	welcome.Session = sess.ID
	if err := fw.writeFrame(&welcome); err != nil {
		return
	}
	// Leaving the handshake phase: clear its deadline and hand deadline
	// duty to the per-frame IdleTimeout / WriteTimeout arming below.
	_ = conn.SetDeadline(time.Time{})

	if s.SessionWorkers > 1 {
		s.serveConcurrent(conn, st, fr, fw, sess, codec)
		return
	}
	req := getFrame()
	defer putFrame(req)
	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		if err := fr.readFrame(req); err != nil {
			if !errors.Is(err, io.EOF) {
				s.logf("rmi server %s: %v", s.Name, err)
			}
			return
		}
		st.inflight.Add(1)
		resp := s.dispatch(sess, req, codec)
		if s.WriteTimeout > 0 {
			_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
		}
		err := fw.writeFrame(resp)
		putFrame(resp)
		st.inflight.Add(-1)
		if err != nil {
			return
		}
	}
}

// handshakeTimeout resolves the effective pre-session deadline.
func (s *Server) handshakeTimeout() time.Duration {
	switch {
	case s.HandshakeTimeout > 0:
		return s.HandshakeTimeout
	case s.HandshakeTimeout < 0:
		return 0
	default:
		return DefaultHandshakeTimeout
	}
}

// codecAccepted applies the server's codec policy.
func (s *Server) codecAccepted(c Codec) bool {
	switch s.Codecs {
	case CodecBinaryOnly:
		return c == CodecBinary
	case CodecGobOnly:
		return c == CodecGob
	}
	return true
}

// serveConcurrent runs the post-handshake request loop with per-session
// concurrent dispatch: this goroutine decodes requests and routes them,
// a bounded worker pool executes unordered handlers in parallel, a
// single ordered lane executes HandleOrdered methods in arrival order,
// and one response writer serializes all responses back onto the framed
// stream in completion order (the pipelined client correlates them by
// frame ID, so response order is free).
func (s *Server) serveConcurrent(conn net.Conn, st *connState, fr frameDecoder, fw frameEncoder, sess *Session, codec Codec) {
	workers := s.SessionWorkers
	respCh := make(chan *frame, workers+1)
	workCh := make(chan *frame)
	orderCh := make(chan *frame, workers)
	writerDone := make(chan struct{})

	go func() { // response writer: sole owner of the frame encoder
		defer close(writerDone)
		for resp := range respCh {
			if s.WriteTimeout > 0 {
				_ = conn.SetWriteDeadline(time.Now().Add(s.WriteTimeout))
			}
			err := fw.writeFrame(resp)
			putFrame(resp)
			st.inflight.Add(-1) // answered (or abandoned): no longer drain-relevant
			if err != nil {
				// The write side is gone; close the conn so the request
				// loop stops, then drain so no handler blocks on respCh.
				conn.Close()
				for resp := range respCh {
					putFrame(resp)
					st.inflight.Add(-1)
				}
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range workCh {
				resp := s.dispatch(sess, req, codec)
				putFrame(req)
				respCh <- resp
			}
		}()
	}
	wg.Add(1)
	go func() { // ordered lane: arrival-order execution for stateful methods
		defer wg.Done()
		for req := range orderCh {
			resp := s.dispatch(sess, req, codec)
			putFrame(req)
			respCh <- resp
		}
	}()

	for {
		if s.IdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.IdleTimeout))
		}
		req := getFrame()
		if err := fr.readFrame(req); err != nil {
			putFrame(req)
			if !errors.Is(err, io.EOF) {
				s.logf("rmi server %s: %v", s.Name, err)
			}
			break
		}
		st.inflight.Add(1)
		if s.isOrdered(req.Method) {
			orderCh <- req
		} else {
			workCh <- req
		}
	}
	close(workCh)
	close(orderCh)
	wg.Wait()
	close(respCh)
	<-writerDone
}

// handshake authenticates the hello frame and opens a session. The
// Admit hook runs after authentication and after every other failure
// source, so when it accepts, the session open is guaranteed — a front
// end can reserve an admission slot in Admit and release it in
// SessionClose without leak paths in between.
func (s *Server) handshake(hello *frame, remote net.Addr) (*Session, error) {
	if hello.Kind != kindHello {
		return nil, errors.New("rmi: protocol error: expected hello")
	}
	s.mu.Lock()
	key, ok := s.keys[hello.Client]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("rmi: unknown client %q", hello.Client)
	}
	msg := append(append([]byte(nil), hello.Nonce...), hello.Client...)
	if !key.Verify(msg, hello.Tag) {
		return nil, fmt.Errorf("rmi: authentication failed for %q", hello.Client)
	}
	idBytes := make([]byte, 8)
	if _, err := rand.Read(idBytes); err != nil {
		return nil, err
	}
	h := s.Hooks
	if h != nil && h.Admit != nil {
		if err := h.Admit(hello.Client, remote); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	s.nextSess++
	sess := &Session{
		ID:     fmt.Sprintf("%s-%d-%s", s.Name, s.nextSess, hex.EncodeToString(idBytes)),
		Client: hello.Client,
	}
	s.sessions[sess.ID] = sess
	s.mu.Unlock()
	if h != nil && h.SessionOpen != nil {
		h.SessionOpen(sess)
	}
	return sess, nil
}

// closeSession retires a session when its connection ends: the session
// table must not grow one entry per connection forever under
// multi-tenant load. The SessionClose hook fires exactly once per
// opened session (ServeConn's exit paths all funnel here).
func (s *Server) closeSession(sess *Session) {
	s.mu.Lock()
	delete(s.sessions, sess.ID)
	s.mu.Unlock()
	if h := s.Hooks; h != nil && h.SessionClose != nil {
		h.SessionClose(sess)
	}
}

// RespondReject answers an incoming connection's handshake with a
// rejection in the connection's own codec and closes it, without
// touching the server's session machinery. It is the gateway's
// fast-fail path for connections that exceed the bounded accept queue:
// the dialer gets a loud, typed wire error within the timeout instead
// of a silent hang or an unexplained reset. The hello is read (and
// discarded unverified — this path exists precisely because the server
// is too loaded to do per-connection work) so the rejection arrives
// where the client's handshake is listening for the welcome frame.
func RespondReject(conn net.Conn, timeout time.Duration, msg string) {
	defer conn.Close()
	if timeout > 0 {
		_ = conn.SetDeadline(time.Now().Add(timeout))
	}
	var first [1]byte
	if _, err := io.ReadFull(conn, first[:]); err != nil {
		return
	}
	r := io.MultiReader(bytes.NewReader(first[:]), conn)
	var fw frameEncoder
	var fr frameDecoder
	if first[0] == binMagic0 {
		fw = &binFrameWriter{w: conn}
		fr = &binFrameReader{r: r, aliasPayload: true}
	} else {
		g := &gobFrameCodec{enc: gob.NewEncoder(conn), dec: gob.NewDecoder(r)}
		fw, fr = g, g
	}
	var hello frame
	if err := fr.readFrame(&hello); err != nil {
		return
	}
	_ = fw.writeFrame(&frame{Kind: kindWelcome, Err: msg})
}

// framePool recycles request and response frames (and their payload
// buffers) across the serve loops. A frame returns to the pool only
// once its single owner is done with it: requests after dispatch
// returns, responses after writeFrame — both loops are strictly
// sequential per frame, so no pooled frame is ever aliased.
var framePool = sync.Pool{New: func() any { return new(frame) }}

func getFrame() *frame { return framePool.Get().(*frame) }

// putFrame resets a frame for reuse, keeping the payload buffer's
// capacity (the binary reader and the payload encoder both append into
// it). Every non-payload field is zeroed so a pooled frame can go
// straight into a gob decode, which leaves absent fields untouched.
func putFrame(f *frame) {
	pl := f.Payload
	*f = frame{}
	f.Payload = pl[:0]
	framePool.Put(f)
}

// dispatch runs one request through its handler, vetting the response
// against the provider's marshalling policy. The reply payload is
// encoded under the connection's codec, so binary peers get the
// hand-written encodings and gob peers the legacy bytes. The returned
// frame comes from framePool; the caller releases it after writing.
func (s *Server) dispatch(sess *Session, req *frame, codec Codec) *frame {
	resp := getFrame()
	resp.Kind, resp.ID = kindResponse, req.ID
	if req.Kind != kindRequest || req.Session != sess.ID {
		resp.Err = "rmi: protocol error"
		return resp
	}
	s.mu.Lock()
	h, ok := s.methods[req.Method]
	s.mu.Unlock()
	if !ok {
		resp.Err = fmt.Sprintf("rmi: unknown method %q", req.Method)
		return resp
	}
	if hooks := s.Hooks; hooks != nil && (hooks.BeforeCall != nil || hooks.AfterCall != nil) {
		return s.dispatchHooked(hooks, sess, req, codec, h)
	}
	return s.dispatchCall(sess, req, codec, h)
}

// dispatchHooked wraps dispatchCall with the gateway's per-call vetting
// and metering hooks: BeforeCall may throttle (it blocks) or reject
// (its error becomes the call's remote error), AfterCall observes every
// outcome with the dispatch latency.
func (s *Server) dispatchHooked(hooks *ServerHooks, sess *Session, req *frame, codec Codec, h Handler) *frame {
	payloadBytes := len(req.Payload)
	method := req.Method
	start := time.Now()
	if hooks.BeforeCall != nil {
		if err := hooks.BeforeCall(sess, method, payloadBytes); err != nil {
			resp := getFrame()
			resp.Kind, resp.ID = kindResponse, req.ID
			resp.Err = err.Error()
			if hooks.AfterCall != nil {
				hooks.AfterCall(sess, method, payloadBytes, time.Since(start), true)
			}
			return resp
		}
	}
	resp := s.dispatchCall(sess, req, codec, h)
	if hooks.AfterCall != nil {
		hooks.AfterCall(sess, method, payloadBytes, time.Since(start), resp.Err != "")
	}
	return resp
}

// dispatchCall runs the handler and vets/encodes its response.
func (s *Server) dispatchCall(sess *Session, req *frame, codec Codec, h Handler) *frame {
	resp := getFrame()
	resp.Kind, resp.ID = kindResponse, req.ID
	reply, err := func() (reply any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("rmi: handler %s panicked: %v", req.Method, r)
			}
		}()
		return h(sess, req.Payload)
	}()
	if err != nil {
		resp.Err = err.Error()
		return resp
	}
	policy := s.Policy
	if policy == nil {
		policy = &security.DefaultPolicy
	}
	pd, ok := reply.(PortData)
	if !ok {
		resp.Err = fmt.Sprintf("rmi: response %T does not declare its port data", reply)
		return resp
	}
	if err := checkOutbound(policy, pd); err != nil {
		resp.Err = err.Error()
		return resp
	}
	payload, err := appendPayload(resp.Payload[:0], reply, codec)
	if err != nil {
		resp.Err = err.Error()
		resp.Payload = resp.Payload[:0]
		return resp
	}
	resp.Payload = payload
	return resp
}
