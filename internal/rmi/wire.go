// Package rmi is gocad's stand-in for Java RMI: a compact remote-method
// protocol over TCP (or any net.Conn) with gob-serialized arguments,
// HMAC-authenticated sessions, client-side stubs, an enforced
// marshalling policy (only port-value data crosses the IP boundary), and
// hooks for network emulation and blocked-time metering. It retains the
// properties the paper relies on: remote method invocation with proper
// argument/return serialization, a secure channel between IP user and IP
// provider, and per-call overhead that pattern buffering must amortize.
package rmi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// frame kinds.
const (
	kindHello uint8 = iota + 1
	kindWelcome
	kindRequest
	kindResponse
)

// frame is the single wire envelope; unused fields stay zero.
type frame struct {
	Kind    uint8
	ID      uint64
	Session string
	Method  string
	Payload []byte
	Err     string
	Client  string
	Nonce   []byte
	Tag     string
}

// encBufPool recycles the gob scratch buffers of Encode. Batch payloads
// run to tens of kilobytes; without pooling every Encode re-grows a
// fresh bytes.Buffer through the doubling ladder. With the pool the
// scratch storage is amortized to zero allocations: steady-state encodes
// pay only the returned copy (sized exactly) and the per-stream gob
// encoder state, independent of payload size.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decReaderPool recycles the bytes.Reader wrappers of Decode.
var decReaderPool = sync.Pool{New: func() any { return new(bytes.Reader) }}

// Encode gob-serializes a payload value for transport.
func Encode(v any) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		return nil, fmt.Errorf("rmi: encode %T: %w", v, err)
	}
	out := append([]byte(nil), buf.Bytes()...)
	encBufPool.Put(buf)
	return out, nil
}

// Decode gob-deserializes a payload into v (a pointer).
func Decode(b []byte, v any) error {
	r := decReaderPool.Get().(*bytes.Reader)
	r.Reset(b)
	err := gob.NewDecoder(r).Decode(v)
	r.Reset(nil) // drop the payload reference before pooling
	decReaderPool.Put(r)
	if err != nil {
		return fmt.Errorf("rmi: decode into %T: %w", v, err)
	}
	return nil
}

// PortData is implemented by every request and response envelope to
// expose its design-derived content to the marshalling policy. An
// envelope that cannot enumerate its port-value data cannot cross the
// boundary at all — this is what makes the policy a default-deny check
// rather than a blocklist.
type PortData interface {
	PortData() []any
}

// RemoteError is returned by Call when the remote method failed.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rmi: remote %s: %s", e.Method, e.Msg)
}
