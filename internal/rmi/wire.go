// Package rmi is gocad's stand-in for Java RMI: a compact remote-method
// protocol over TCP (or any net.Conn) with HMAC-authenticated sessions,
// client-side stubs, an enforced marshalling policy (only port-value
// data crosses the IP boundary), and hooks for network emulation and
// blocked-time metering. It retains the properties the paper relies on:
// remote method invocation with proper argument/return serialization, a
// secure channel between IP user and IP provider, and per-call overhead
// that pattern buffering must amortize.
//
// Two wire codecs are supported (DESIGN.md §12). The default binary
// codec frames every message in hand-rolled wire format v1 — fixed
// little-endian header, varint fields, length-prefixed sections, pooled
// buffers — so steady-state framing allocates nothing; payload types
// that implement BinaryAppender/BinaryDecoder bypass reflection
// entirely. CodecGob keeps the original reflective gob framing: the
// server auto-detects the codec per connection, so old peers keep
// working and migration tests can prove the two codecs semantically
// equivalent byte for byte.
package rmi

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/security"
)

// frame kinds.
const (
	kindHello uint8 = iota + 1
	kindWelcome
	kindRequest
	kindResponse
)

// frame is the single wire envelope; unused fields stay zero.
type frame struct {
	Kind    uint8
	ID      uint64
	Session string
	Method  string
	Payload []byte
	Err     string
	Client  string
	Nonce   []byte
	Tag     string
}

// encBufPool recycles the gob scratch buffers of Encode. Batch payloads
// run to tens of kilobytes; without pooling every Encode re-grows a
// fresh bytes.Buffer through the doubling ladder. With the pool the
// scratch storage is amortized to zero allocations: steady-state encodes
// pay only the returned copy (sized exactly) and the per-stream gob
// encoder state, independent of payload size.
var encBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// decReaderPool recycles the bytes.Reader wrappers of Decode.
var decReaderPool = sync.Pool{New: func() any { return new(bytes.Reader) }}

// Encode gob-serializes a payload value for transport.
func Encode(v any) ([]byte, error) {
	buf := encBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		encBufPool.Put(buf)
		return nil, fmt.Errorf("rmi: encode %T: %w", v, err)
	}
	out := append([]byte(nil), buf.Bytes()...)
	encBufPool.Put(buf)
	return out, nil
}

// binPayloadTag marks a payload encoded with the type's own
// AppendTo/DecodeFrom methods instead of gob. The tag byte is 0x00,
// which can never begin a gob stream (gob's leading byte is a message
// length in 1..127 or a negated byte count near 0xFF), so payloads stay
// self-describing: Decode dispatches on the first byte, and mixed
// streams — binary framing with gob payloads for cold setup types —
// decode correctly.
const binPayloadTag = 0x00

// BinaryAppender is implemented by payload envelopes with a hand-written
// binary encoding: AppendTo appends the type's wire form to b and
// returns the extended slice. Hot batch types (pattern batches,
// power/timing samples, detection-table rows) implement it so the
// reflective gob path disappears from the steady state.
type BinaryAppender interface {
	AppendTo(b []byte) []byte
}

// BinaryDecoder is the decode half of BinaryAppender, implemented on the
// pointer type. DecodeFrom must consume b exactly and must validate
// every length prefix against the bytes present — it sees untrusted
// input.
type BinaryDecoder interface {
	DecodeFrom(b []byte) error
}

// EncodePayload serializes a payload envelope for transport under the
// given codec: types implementing BinaryAppender get their hand-written
// encoding (tagged self-describing) under the binary codec; everything
// else — and everything on a gob connection, preserving the legacy
// byte-exact wire — goes through gob.
func EncodePayload(v any, codec Codec) ([]byte, error) {
	return appendPayload(nil, v, codec)
}

// appendPayload is EncodePayload into a caller-provided buffer: the
// binary fast path appends in place (the server's pooled response
// frames recycle their payload buffers through here), while the gob
// path always returns a fresh buffer — gob owns its encoder buffering.
func appendPayload(dst []byte, v any, codec Codec) ([]byte, error) {
	if codec == CodecBinary {
		if ap, ok := v.(BinaryAppender); ok {
			return ap.AppendTo(append(dst, binPayloadTag)), nil
		}
	}
	return Encode(v)
}

// Decode deserializes a payload into v (a pointer), dispatching on the
// self-describing first byte: binary-tagged payloads decode through the
// type's DecodeFrom, everything else through gob.
func Decode(b []byte, v any) error {
	if len(b) > 0 && b[0] == binPayloadTag {
		bd, ok := v.(BinaryDecoder)
		if !ok {
			return fmt.Errorf("rmi: binary-tagged payload for %T, which does not implement DecodeFrom", v)
		}
		if err := bd.DecodeFrom(b[1:]); err != nil {
			return fmt.Errorf("rmi: decode into %T: %w", v, err)
		}
		return nil
	}
	r := decReaderPool.Get().(*bytes.Reader)
	r.Reset(b)
	err := gob.NewDecoder(r).Decode(v)
	r.Reset(nil) // drop the payload reference before pooling
	decReaderPool.Put(r)
	if err != nil {
		return fmt.Errorf("rmi: decode into %T: %w", v, err)
	}
	return nil
}

// PortData is implemented by every request and response envelope to
// expose its design-derived content to the marshalling policy. An
// envelope that cannot enumerate its port-value data cannot cross the
// boundary at all — this is what makes the policy a default-deny check
// rather than a blocklist.
type PortData interface {
	PortData() []any
}

// PortCounter is an optional refinement of PortData for envelopes whose
// fields are statically port-value types (bits, words, numeric scalars,
// strings, and slices thereof): PortValueCount returns the total the
// policy's canonical walk would compute over PortData(), so the
// outbound check reduces to a budget comparison without materializing
// the []any boxing on every call — the last per-call allocation the
// wire codec cannot remove. The two counts must agree; the iplib
// envelope tests cross-check every implementation against
// security.ValueCount.
type PortCounter interface {
	PortValueCount() int
}

// checkOutbound vets one envelope against the marshalling policy,
// taking the self-counting fast path when the envelope offers it.
func checkOutbound(policy *security.MarshalPolicy, pd PortData) error {
	if pc, ok := pd.(PortCounter); ok {
		return policy.CheckCount(pc.PortValueCount())
	}
	for _, v := range pd.PortData() {
		if err := policy.CheckOutbound(v); err != nil {
			return err
		}
	}
	return nil
}

// RemoteError is returned by Call when the remote method failed.
type RemoteError struct {
	Method string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rmi: remote %s: %s", e.Method, e.Msg)
}
