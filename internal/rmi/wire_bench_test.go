package rmi

import (
	"fmt"
	"testing"

	"repro/internal/signal"
)

// benchEnvelope builds a power-batch-shaped payload of n patterns.
func benchEnvelope(n int) echoReq {
	bits := make([]signal.Bit, 64*n)
	for i := range bits {
		bits[i] = signal.Bit(i % 2)
	}
	return echoReq{Bits: bits, Note: "bench"}
}

// BenchmarkEncode measures the wire encoder's allocation profile across
// payload sizes. The scratch bytes.Buffer is pooled, so allocs/op must
// stay flat as the payload grows: only the returned exact-size slice and
// gob's own per-encoder state remain, amortizing the buffer's backing
// array growth to zero across calls.
func BenchmarkEncode(b *testing.B) {
	for _, n := range []int{1, 16, 256} {
		env := benchEnvelope(n)
		b.Run(fmt.Sprintf("patterns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Encode(env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecode measures the decode path, whose bytes.Reader scratch is
// pooled the same way.
func BenchmarkDecode(b *testing.B) {
	for _, n := range []int{1, 16, 256} {
		raw, err := Encode(benchEnvelope(n))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("patterns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var out echoReq
				if err := Decode(raw, &out); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestEncodeScratchAmortized pins the pooling win without benchmark
// flakiness: the scratch buffer is pooled, so the encode path's
// allocation count must be FLAT in payload size — growing a payload
// 256-fold adds zero allocations per call. (The fixed per-call overhead
// is gob encoder state plus the returned exact-size slice; unpooled, the
// grown buffer chain would add allocs at every size step.)
func TestEncodeScratchAmortized(t *testing.T) {
	// A GC between warm-up and measurement can empty the scratch pool,
	// charging a pool-miss allocation to whichever measurement it lands
	// in. Noise only ever ADDS allocations, so the minimum of a few
	// rounds is the steady-state count.
	measure := func(env echoReq) float64 {
		best := -1.0
		for round := 0; round < 3; round++ {
			for i := 0; i < 8; i++ { // warm the pool
				if _, err := Encode(env); err != nil {
					t.Fatal(err)
				}
			}
			got := testing.AllocsPerRun(100, func() {
				if _, err := Encode(env); err != nil {
					t.Fatal(err)
				}
			})
			if best < 0 || got < best {
				best = got
			}
		}
		return best
	}
	small := measure(benchEnvelope(1))
	large := measure(benchEnvelope(256)) // ≈ 16 KiB of pattern bits
	// Under the race detector sync.Pool.Put randomly drops ~1 in 4 items,
	// so a handful of the 100 measured encodes miss the pool and pay a
	// regrow. Allow that noise: the unpooled growth ladder to 16 KiB is
	// ~8 doublings, so a slack of 2 still distinguishes pooled from not.
	const slack = 2
	if large > small+slack {
		t.Errorf("Encode allocs grew with payload: %.1f at 1 pattern, %.1f at 256; scratch buffer not amortized", small, large)
	}
}
