// Package sealed implements the second related-work IP-protection
// baseline the paper discusses: MODEL ENCRYPTION. The provider ships an
// accurate simulation model encrypted under a key; the user "links" it
// into the simulator and runs it locally. The sealed model exposes
// functionality only — the structural view stays inside the package.
//
// The paper's critique, which the tests make concrete:
//
//   - the decryption key must exist on the user's machine for the model
//     to run at all, so confidentiality rests on obfuscation of the key
//     rather than on a server boundary (here the key is an explicit
//     argument — the honest rendering of that weakness);
//   - only what is in the shipped model can ever be evaluated: accurate
//     power or testability need the structural view, which a sealed
//     functional model deliberately does not expose, whereas virtual
//     simulation serves them from the provider's server.
//
// Mechanically: the netlist snapshot (gate's binary codec) is encrypted
// with AES-256-GCM; Open authenticates and decrypts it into an evaluator
// whose API is evaluation-only.
package sealed

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"

	"repro/internal/gate"
	"repro/internal/signal"
)

// Model is an encrypted simulation model as shipped to the user.
type Model struct {
	// ComponentName is public catalogue metadata.
	ComponentName string
	// Nonce and Ciphertext carry the sealed netlist snapshot.
	Nonce      []byte
	Ciphertext []byte
}

// Seal encrypts a component's netlist under a 32-byte key.
func Seal(nl *gate.Netlist, key []byte) (*Model, error) {
	blob, err := nl.MarshalBinary()
	if err != nil {
		return nil, err
	}
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	return &Model{
		ComponentName: nl.Name,
		Nonce:         nonce,
		Ciphertext:    gcm.Seal(nil, nonce, blob, []byte(nl.Name)),
	}, nil
}

// Evaluator is the user-side view of an opened model: functionality only.
// There is deliberately no way to reach the netlist, its gates, its nets,
// or per-net activity — which is precisely why this baseline cannot serve
// accurate power estimation or detection tables.
type Evaluator struct {
	ev   *gate.Evaluator
	nIn  int
	nOut int
	name string
}

// Open authenticates and decrypts a sealed model. It fails on a wrong key
// or tampered ciphertext.
func Open(m *Model, key []byte) (*Evaluator, error) {
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	if len(m.Nonce) != gcm.NonceSize() {
		return nil, errors.New("sealed: malformed nonce")
	}
	blob, err := gcm.Open(nil, m.Nonce, m.Ciphertext, []byte(m.ComponentName))
	if err != nil {
		return nil, fmt.Errorf("sealed: open %s: %w", m.ComponentName, err)
	}
	nl := gate.NewNetlist("")
	if err := nl.UnmarshalBinary(blob); err != nil {
		return nil, err
	}
	ev, err := nl.NewEvaluator()
	if err != nil {
		return nil, err
	}
	return &Evaluator{ev: ev, nIn: len(nl.Inputs()), nOut: len(nl.Outputs()), name: m.ComponentName}, nil
}

// Name returns the component's catalogue name.
func (e *Evaluator) Name() string { return e.name }

// NumInputs returns the input count of the sealed model.
func (e *Evaluator) NumInputs() int { return e.nIn }

// NumOutputs returns the output count of the sealed model.
func (e *Evaluator) NumOutputs() int { return e.nOut }

// Eval evaluates the model functionally.
func (e *Evaluator) Eval(inputs []signal.Bit) ([]signal.Bit, error) {
	out, err := e.ev.Eval(inputs)
	if err != nil {
		return nil, err
	}
	return append([]signal.Bit(nil), out...), nil
}

func newGCM(key []byte) (cipher.AEAD, error) {
	if len(key) != 32 {
		return nil, fmt.Errorf("sealed: key must be 32 bytes, got %d", len(key))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}
