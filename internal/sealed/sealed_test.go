package sealed

import (
	"math/rand"
	"testing"

	"repro/internal/gate"
	"repro/internal/signal"
)

func key32() []byte { return []byte("0123456789abcdef0123456789abcdef") }

func TestSealOpenFunctionalParity(t *testing.T) {
	nl := gate.ArrayMultiplier(6)
	m, err := Seal(nl, key32())
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Open(m, key32())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Name() != nl.Name || ev.NumInputs() != 12 || ev.NumOutputs() != 12 {
		t.Errorf("metadata wrong: %s %d/%d", ev.Name(), ev.NumInputs(), ev.NumOutputs())
	}
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		v := uint64(r.Intn(1 << 12))
		want, err := nl.Eval(nl.InputWord(v))
		if err != nil {
			t.Fatal(err)
		}
		got, err := ev.Eval(nl.InputWord(v))
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if want[j] != got[j] {
				t.Fatalf("sealed model diverges at input %d output %d", v, j)
			}
		}
	}
}

func TestWrongKeyFails(t *testing.T) {
	nl := gate.RippleAdder(3)
	m, err := Seal(nl, key32())
	if err != nil {
		t.Fatal(err)
	}
	wrong := []byte("ffffffffffffffffffffffffffffffff")
	if _, err := Open(m, wrong); err == nil {
		t.Error("wrong key opened the model")
	}
}

func TestTamperedCiphertextFails(t *testing.T) {
	nl := gate.RippleAdder(3)
	m, err := Seal(nl, key32())
	if err != nil {
		t.Fatal(err)
	}
	m.Ciphertext[len(m.Ciphertext)/2] ^= 0x01
	if _, err := Open(m, key32()); err == nil {
		t.Error("tampered ciphertext opened")
	}
}

func TestTamperedMetadataFails(t *testing.T) {
	// The component name is authenticated as associated data.
	nl := gate.RippleAdder(3)
	m, err := Seal(nl, key32())
	if err != nil {
		t.Fatal(err)
	}
	m.ComponentName = "renamed"
	if _, err := Open(m, key32()); err == nil {
		t.Error("renamed model opened")
	}
}

func TestBadKeyLengthRejected(t *testing.T) {
	nl := gate.RippleAdder(2)
	if _, err := Seal(nl, []byte("short")); err == nil {
		t.Error("short key accepted by Seal")
	}
	m, _ := Seal(nl, key32())
	if _, err := Open(m, []byte("short")); err == nil {
		t.Error("short key accepted by Open")
	}
}

func TestMalformedNonceRejected(t *testing.T) {
	nl := gate.RippleAdder(2)
	m, _ := Seal(nl, key32())
	m.Nonce = m.Nonce[:4]
	if _, err := Open(m, key32()); err == nil {
		t.Error("truncated nonce accepted")
	}
}

func TestEvalArityChecked(t *testing.T) {
	nl := gate.RippleAdder(2)
	m, _ := Seal(nl, key32())
	ev, err := Open(m, key32())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Eval([]signal.Bit{signal.B1}); err == nil {
		t.Error("wrong arity accepted")
	}
}

func TestEvalOutputIsCopy(t *testing.T) {
	nl := gate.RippleAdder(2)
	m, _ := Seal(nl, key32())
	ev, _ := Open(m, key32())
	a, err := ev.Eval(nl.InputWord(0b0101))
	if err != nil {
		t.Fatal(err)
	}
	a[0] = signal.BX
	b, err := ev.Eval(nl.InputWord(0b0101))
	if err != nil {
		t.Fatal(err)
	}
	if b[0] == signal.BX {
		t.Error("evaluator leaked internal buffer")
	}
}
