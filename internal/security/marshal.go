package security

import (
	"fmt"

	"repro/internal/signal"
)

// The marshalling policy is the user-side half of IP protection: because
// a remote IP component needs only the information available at its own
// ports to perform any estimation or simulation, gocad transmits ONLY
// that information over the RPC channel. CheckOutbound is invoked on
// every payload before it crosses the boundary, and rejects anything that
// could leak the surrounding design: module or connector references,
// functions, channels, or payloads exceeding the configured budget.

// MarshalPolicy bounds outbound payloads.
type MarshalPolicy struct {
	// MaxValues bounds the number of scalar signal values per payload
	// (buffered patterns count each value). Zero means DefaultMaxValues.
	MaxValues int
}

// DefaultMaxValues is the per-payload value budget when unset.
const DefaultMaxValues = 1 << 20

// DefaultPolicy is the policy used by the RPC layer when none is given.
var DefaultPolicy = MarshalPolicy{}

// CheckOutbound verifies that a payload consists only of port-value data:
// bits, words, numeric scalars, strings naming methods or faults, and
// (recursively) slices thereof. It returns a descriptive error for
// anything else.
func (p MarshalPolicy) CheckOutbound(v any) error {
	max := p.MaxValues
	if max == 0 {
		max = DefaultMaxValues
	}
	n, err := countValues(v)
	if err != nil {
		return err
	}
	if n > max {
		return fmt.Errorf("security: payload carries %d values, policy allows %d", n, max)
	}
	return nil
}

// CheckCount enforces the value budget for envelopes that report their
// own port-value count (rmi.PortCounter): such envelopes are statically
// port-value-typed, so the per-value content walk is redundant and only
// the budget applies. The reported count covers the whole payload, so
// this check is at least as strict as the per-element CheckOutbound
// walk it replaces.
func (p MarshalPolicy) CheckCount(n int) error {
	max := p.MaxValues
	if max == 0 {
		max = DefaultMaxValues
	}
	if n > max {
		return fmt.Errorf("security: payload carries %d values, policy allows %d", n, max)
	}
	return nil
}

// ValueCount exposes the policy's value metric for one port-data
// element, so self-counting envelopes can be cross-checked against the
// canonical walk in tests.
func ValueCount(v any) (int, error) { return countValues(v) }

// countValues walks a payload counting scalar values and rejecting
// non-port-value content.
func countValues(v any) (int, error) {
	switch x := v.(type) {
	case nil:
		return 0, nil
	case bool, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64, float32, float64, string:
		return 1, nil
	case signal.Bit, signal.BitValue:
		return 1, nil
	case signal.Word:
		return x.Width(), nil
	case signal.WordValue:
		return x.W.Width(), nil
	case []signal.Bit:
		return len(x), nil
	case []signal.Word:
		n := 0
		for _, w := range x {
			n += w.Width()
		}
		return n, nil
	case [][]signal.Bit:
		n := 0
		for _, row := range x {
			n += len(row)
		}
		return n, nil
	case []uint64:
		return len(x), nil
	case []float64:
		return len(x), nil
	case []string:
		return len(x), nil
	case []any:
		n := 0
		for _, e := range x {
			m, err := countValues(e)
			if err != nil {
				return 0, err
			}
			n += m
		}
		return n, nil
	default:
		return 0, fmt.Errorf("security: payload type %T is not port-value data and may not cross the IP boundary", v)
	}
}
