package security

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// allCapabilities enumerates every Capability value the sandbox
// distinguishes; the matrix tests below iterate it so a new capability
// cannot be added without being exercised here.
var allCapabilities = []Capability{
	CapProviderChannel, CapFileRead, CapFileWrite, CapOtherNetwork,
}

func TestAllCapabilitiesNamed(t *testing.T) {
	if len(allCapabilities) != len(capNames) {
		t.Fatalf("test matrix covers %d capabilities, package names %d", len(allCapabilities), len(capNames))
	}
	for _, c := range allCapabilities {
		if _, ok := capNames[c]; !ok {
			t.Errorf("capability %d has no name", int(c))
		}
	}
}

// TestSandboxDenialMatrix drives every capability through every sandbox
// configuration: the paper's default policy (provider channel only), a
// fully relaxed sandbox, a fully revoked one, and the zero value (deny
// everything).
func TestSandboxDenialMatrix(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Sandbox
		want  map[Capability]bool // capability -> allowed
	}{
		{
			name:  "default policy",
			build: func() *Sandbox { return NewSandbox("part", nil) },
			want: map[Capability]bool{
				CapProviderChannel: true,
				CapFileRead:        false,
				CapFileWrite:       false,
				CapOtherNetwork:    false,
			},
		},
		{
			name: "fully granted",
			build: func() *Sandbox {
				s := NewSandbox("part", nil)
				for _, c := range allCapabilities {
					s.Grant(c)
				}
				return s
			},
			want: map[Capability]bool{
				CapProviderChannel: true,
				CapFileRead:        true,
				CapFileWrite:       true,
				CapOtherNetwork:    true,
			},
		},
		{
			name: "fully revoked",
			build: func() *Sandbox {
				s := NewSandbox("part", nil)
				for _, c := range allCapabilities {
					s.Revoke(c)
				}
				return s
			},
			want: map[Capability]bool{
				CapProviderChannel: false,
				CapFileRead:        false,
				CapFileWrite:       false,
				CapOtherNetwork:    false,
			},
		},
		{
			name:  "zero value denies everything",
			build: func() *Sandbox { return &Sandbox{Principal: "part"} },
			want: map[Capability]bool{
				CapProviderChannel: false,
				CapFileRead:        false,
				CapFileWrite:       false,
				CapOtherNetwork:    false,
			},
		},
		{
			name: "zero value then granted",
			build: func() *Sandbox {
				s := &Sandbox{Principal: "part"}
				s.Grant(CapFileRead)
				return s
			},
			want: map[Capability]bool{
				CapProviderChannel: false,
				CapFileRead:        true,
				CapFileWrite:       false,
				CapOtherNetwork:    false,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if len(tc.want) != len(allCapabilities) {
				t.Fatalf("case covers %d capabilities, want %d", len(tc.want), len(allCapabilities))
			}
			s := tc.build()
			for _, c := range allCapabilities {
				err := s.Require(c)
				if tc.want[c] {
					if err != nil {
						t.Errorf("capability %v: denied, want allowed: %v", c, err)
					}
					continue
				}
				var d *Denied
				if !errors.As(err, &d) {
					t.Errorf("capability %v: got %v, want *Denied", c, err)
					continue
				}
				if d.Principal != "part" || d.Cap != c {
					t.Errorf("capability %v: denial names %q/%v", c, d.Principal, d.Cap)
				}
			}
		})
	}
}

// TestAuditLogRecordsEveryDecision checks the append path end to end:
// one entry per Require, allowed and denied both recorded, fields
// faithful, and Entries returning a copy that later appends do not
// mutate.
func TestAuditLogRecordsEveryDecision(t *testing.T) {
	var log AuditLog
	s := NewSandbox("AUDIT.part", &log)
	s.Grant(CapFileRead)
	seq := []struct {
		cap     Capability
		allowed bool
	}{
		{CapProviderChannel, true},
		{CapFileRead, true},
		{CapFileWrite, false},
		{CapOtherNetwork, false},
		{CapFileWrite, false},
	}
	for _, step := range seq {
		err := s.Require(step.cap)
		if (err == nil) != step.allowed {
			t.Fatalf("Require(%v) = %v, want allowed=%v", step.cap, err, step.allowed)
		}
	}
	entries := log.Entries()
	if len(entries) != len(seq) {
		t.Fatalf("audit log has %d entries, want %d", len(entries), len(seq))
	}
	for i, e := range entries {
		if e.Cap != seq[i].cap || e.Allowed != seq[i].allowed {
			t.Errorf("entry %d = {%v allowed=%v}, want {%v allowed=%v}",
				i, e.Cap, e.Allowed, seq[i].cap, seq[i].allowed)
		}
		if e.Principal != "AUDIT.part" {
			t.Errorf("entry %d principal %q", i, e.Principal)
		}
		if e.When.IsZero() {
			t.Errorf("entry %d has zero timestamp", i)
		}
	}
	denials := log.Denials()
	if len(denials) != 3 {
		t.Errorf("denials = %d, want 3", len(denials))
	}
	for _, d := range denials {
		if d.Allowed {
			t.Errorf("Denials returned an allowed entry: %+v", d)
		}
	}
	// Entries must be a snapshot: appending afterwards cannot grow or
	// mutate what the caller already holds.
	log.Append(AuditEntry{Principal: "late"})
	if len(entries) != len(seq) {
		t.Errorf("snapshot grew to %d entries after append", len(entries))
	}
}

// TestAuditLogConcurrentAppend exercises the append path under
// contention (the gateway audits every cross-boundary call).
func TestAuditLogConcurrentAppend(t *testing.T) {
	var log AuditLog
	const goroutines, each = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := NewSandbox(fmt.Sprintf("part-%d", g), &log)
			for i := 0; i < each; i++ {
				s.Require(allCapabilities[i%len(allCapabilities)])
			}
		}(g)
	}
	wg.Wait()
	if got := len(log.Entries()); got != goroutines*each {
		t.Errorf("audit log has %d entries, want %d", got, goroutines*each)
	}
}
