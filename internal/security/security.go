// Package security implements gocad's IP-protection mechanisms: the
// marshalling policy that bounds what may cross the user/provider
// boundary (only information available at a component's own ports), the
// sandbox that confines downloaded public parts (the Java-2 security
// manager of the paper: downloaded classes can neither touch the file
// system nor open connections except back to their provider), session
// authentication keys, and an audit log of denied operations.
package security

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"time"
)

// Capability is a privilege a piece of code may hold.
type Capability int

// The capabilities the sandbox distinguishes.
const (
	// CapProviderChannel allows communication with the component's own
	// provider server — the only capability downloaded parts receive by
	// default.
	CapProviderChannel Capability = iota
	// CapFileRead allows reading the user's file system.
	CapFileRead
	// CapFileWrite allows writing or deleting user files.
	CapFileWrite
	// CapOtherNetwork allows connections to hosts other than the
	// component's provider.
	CapOtherNetwork
)

var capNames = map[Capability]string{
	CapProviderChannel: "provider-channel",
	CapFileRead:        "file-read",
	CapFileWrite:       "file-write",
	CapOtherNetwork:    "other-network",
}

// String names the capability.
func (c Capability) String() string {
	if n, ok := capNames[c]; ok {
		return n
	}
	return fmt.Sprintf("Capability(%d)", int(c))
}

// Denied is the error returned when a sandboxed operation lacks its
// capability.
type Denied struct {
	Principal string
	Cap       Capability
}

// Error implements error.
func (d *Denied) Error() string {
	return fmt.Sprintf("security: %s denied capability %s", d.Principal, d.Cap)
}

// AuditEntry records one sandbox decision.
type AuditEntry struct {
	When      time.Time
	Principal string
	Cap       Capability
	Allowed   bool
}

// AuditLog is an append-only record of sandbox decisions.
type AuditLog struct {
	mu      sync.Mutex
	entries []AuditEntry
}

// Append records one decision.
func (l *AuditLog) Append(e AuditEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = append(l.entries, e)
}

// Entries returns a copy of the log.
func (l *AuditLog) Entries() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]AuditEntry(nil), l.entries...)
}

// Denials returns only the denied entries.
func (l *AuditLog) Denials() []AuditEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []AuditEntry
	for _, e := range l.entries {
		if !e.Allowed {
			out = append(out, e)
		}
	}
	return out
}

// Sandbox confines one principal (a downloaded public part or stub) to a
// set of capabilities. The zero value denies everything.
type Sandbox struct {
	Principal string
	Audit     *AuditLog

	mu      sync.RWMutex
	allowed map[Capability]bool
}

// NewSandbox returns a sandbox for the principal with the paper's default
// policy for downloaded code: only the provider channel is allowed.
func NewSandbox(principal string, audit *AuditLog) *Sandbox {
	s := &Sandbox{Principal: principal, Audit: audit, allowed: make(map[Capability]bool)}
	s.allowed[CapProviderChannel] = true
	return s
}

// Grant relaxes the sandbox — "the user can choose to relax security
// requirements". Granting on a zero-value Sandbox (which denies
// everything) lazily creates the capability set.
func (s *Sandbox) Grant(c Capability) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.allowed == nil {
		s.allowed = make(map[Capability]bool)
	}
	s.allowed[c] = true
}

// Revoke removes a capability.
func (s *Sandbox) Revoke(c Capability) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.allowed, c)
}

// Require checks a capability, logging the decision; it returns *Denied
// when the capability is missing.
func (s *Sandbox) Require(c Capability) error {
	s.mu.RLock()
	ok := s.allowed[c]
	s.mu.RUnlock()
	if s.Audit != nil {
		s.Audit.Append(AuditEntry{When: time.Now(), Principal: s.Principal, Cap: c, Allowed: ok})
	}
	if !ok {
		return &Denied{Principal: s.Principal, Cap: c}
	}
	return nil
}

// Key is a shared session secret between an IP user and an IP provider.
type Key []byte

// NewKey returns a fresh 32-byte random key.
func NewKey() (Key, error) {
	k := make([]byte, 32)
	if _, err := rand.Read(k); err != nil {
		return nil, err
	}
	return k, nil
}

// Tag computes the HMAC-SHA256 authentication tag of a message under the
// key, hex encoded.
func (k Key) Tag(msg []byte) string {
	h := hmac.New(sha256.New, k)
	h.Write(msg)
	return hex.EncodeToString(h.Sum(nil))
}

// Verify checks an authentication tag in constant time.
func (k Key) Verify(msg []byte, tag string) bool {
	want, err := hex.DecodeString(tag)
	if err != nil {
		return false
	}
	h := hmac.New(sha256.New, k)
	h.Write(msg)
	return hmac.Equal(h.Sum(nil), want)
}
