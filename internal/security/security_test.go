package security

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/signal"
)

func TestSandboxDefaultPolicy(t *testing.T) {
	var log AuditLog
	s := NewSandbox("MULT.stub", &log)
	if err := s.Require(CapProviderChannel); err != nil {
		t.Errorf("provider channel denied: %v", err)
	}
	for _, c := range []Capability{CapFileRead, CapFileWrite, CapOtherNetwork} {
		err := s.Require(c)
		var d *Denied
		if !errors.As(err, &d) {
			t.Errorf("capability %v not denied", c)
			continue
		}
		if d.Principal != "MULT.stub" || d.Cap != c {
			t.Errorf("denial fields wrong: %+v", d)
		}
		if !strings.Contains(d.Error(), c.String()) {
			t.Errorf("denial message %q lacks capability name", d.Error())
		}
	}
	if len(log.Entries()) != 4 {
		t.Errorf("audit entries = %d, want 4", len(log.Entries()))
	}
	if len(log.Denials()) != 3 {
		t.Errorf("denials = %d, want 3", len(log.Denials()))
	}
}

func TestSandboxGrantRevoke(t *testing.T) {
	s := NewSandbox("p", nil)
	if err := s.Require(CapFileRead); err == nil {
		t.Fatal("file read allowed by default")
	}
	s.Grant(CapFileRead)
	if err := s.Require(CapFileRead); err != nil {
		t.Fatalf("granted capability denied: %v", err)
	}
	s.Revoke(CapFileRead)
	if err := s.Require(CapFileRead); err == nil {
		t.Fatal("revoked capability allowed")
	}
}

func TestCapabilityString(t *testing.T) {
	if CapFileWrite.String() != "file-write" {
		t.Error("capability name wrong")
	}
	if Capability(99).String() == "" {
		t.Error("unknown capability name empty")
	}
}

func TestKeyTagVerify(t *testing.T) {
	k, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("challenge-123")
	tag := k.Tag(msg)
	if !k.Verify(msg, tag) {
		t.Error("valid tag rejected")
	}
	if k.Verify([]byte("other"), tag) {
		t.Error("tag accepted for wrong message")
	}
	if k.Verify(msg, tag[:len(tag)-2]+"ff") {
		t.Error("tampered tag accepted")
	}
	if k.Verify(msg, "not-hex!") {
		t.Error("malformed tag accepted")
	}
	k2, _ := NewKey()
	if k2.Verify(msg, tag) {
		t.Error("tag accepted under different key")
	}
}

func TestMarshalPolicyAllowsPortValues(t *testing.T) {
	p := MarshalPolicy{}
	good := []any{
		nil,
		signal.B1,
		signal.BitValue{B: signal.B0},
		signal.WordFromUint64(7, 8),
		signal.WordValue{W: signal.WordFromUint64(7, 8)},
		[]signal.Bit{signal.B0, signal.B1},
		[][]signal.Bit{{signal.B0}, {signal.B1}},
		[]signal.Word{signal.WordFromUint64(1, 4)},
		[]uint64{1, 2, 3},
		[]float64{1.5},
		[]string{"I3sa0"},
		"estimate.power",
		42,
		3.14,
		true,
		[]any{uint64(1), "x"},
	}
	for _, v := range good {
		if err := p.CheckOutbound(v); err != nil {
			t.Errorf("port-value payload %T rejected: %v", v, err)
		}
	}
}

type designSecret struct{ Netlist any }

func TestMarshalPolicyRejectsStructures(t *testing.T) {
	p := MarshalPolicy{}
	bad := []any{
		designSecret{},
		func() {},
		make(chan int),
		map[string]int{"a": 1},
		[]any{uint64(1), designSecret{}},
	}
	for _, v := range bad {
		if err := p.CheckOutbound(v); err == nil {
			t.Errorf("non-port-value payload %T accepted", v)
		}
	}
}

func TestMarshalPolicyBudget(t *testing.T) {
	p := MarshalPolicy{MaxValues: 10}
	if err := p.CheckOutbound(make([]signal.Bit, 10)); err != nil {
		t.Errorf("payload at budget rejected: %v", err)
	}
	if err := p.CheckOutbound(make([]signal.Bit, 11)); err == nil {
		t.Error("payload over budget accepted")
	}
	big := [][]signal.Bit{make([]signal.Bit, 6), make([]signal.Bit, 6)}
	if err := p.CheckOutbound(big); err == nil {
		t.Error("nested payload over budget accepted")
	}
}
