package shard

import (
	"fmt"
	"sort"

	"repro/internal/estim"
	"repro/internal/module"
	"repro/internal/sim"
)

// DefaultWindow is the conservative synchronization window used when
// Options.Window is zero: the maximum number of consecutive simulation
// instants a solo shard may process between barriers. Any positive value
// yields bit-identical results; the window only trades barrier frequency
// against runahead.
const DefaultWindow = 64

// Options parameterizes a sharded run.
type Options struct {
	// Shards is the number of scheduler instances the design is cut
	// into; values below 1 run a single shard (still through the
	// coordinator, which is the baseline the determinism matrix compares
	// against).
	Shards int
	// Window is the conservative synchronization window (instants of
	// solo runahead between barriers); 0 uses DefaultWindow, 1 forces a
	// barrier at every instant.
	Window int
	// Workers bounds the sim.Pool fanning shard deliveries out per delta
	// round: 0 uses one worker per CPU, 1 processes shards serially.
	// Results are bit-identical at any worker count.
	Workers int
	// Until stops the run before delivering any token strictly later
	// than this time; zero means no bound (scheduler semantics).
	Until sim.Time
	// MaxInstants stops the run after this many completed instants.
	MaxInstants int
	// EventLimit bounds delivered tokens across all shards; 0 uses
	// sim.DefaultEventLimit.
	EventLimit uint64
	// Setup, when non-nil, is applied hierarchically before the run and
	// estimation tokens are delivered to every leaf at the completion of
	// each global instant — exactly the single-scheduler contract.
	Setup *estim.Setup
	// Plan supplies a precomputed partition; nil partitions the circuit
	// with PartitionCircuit(c, Shards).
	Plan *Plan
}

// Stats summarizes one completed sharded run.
type Stats struct {
	// Schedulers lists the per-shard scheduler IDs in shard order.
	Schedulers []sim.SchedulerID
	// EndTime is the last simulated instant.
	EndTime sim.Time
	// Delivered is the total token count across shards; MaxQueue the
	// worst per-shard queue high-water mark.
	Delivered uint64
	MaxQueue  int
	// Instants counts completed global instants, Rounds the delta rounds
	// inside them, Barriers the global lower-bound-timestamp
	// synchronizations, SoloTurns the instants run inside a conservative
	// window without a barrier, and CrossTokens the tokens that crossed
	// a shard boundary.
	Instants    int
	Rounds      int
	Barriers    int
	SoloTurns   int
	CrossTokens int
	// CutCost echoes the partition's connector-cut cost.
	CutCost int
	Err     error

	owners map[sim.Handler]sim.SchedulerID
}

// OwnerOf returns the scheduler ID that owned a handler during the run —
// the key under which per-scheduler artifacts (e.g. a PrimaryOutput's
// history) were recorded. The zero ID is returned for unknown handlers.
func (st Stats) OwnerOf(h sim.Handler) sim.SchedulerID {
	if id, ok := st.owners[h]; ok {
		return id
	}
	if b, ok := h.(interface{ Base() *module.Skeleton }); ok {
		return st.owners[b.Base()]
	}
	return 0
}

// capture is one token intercepted while a shard delivered its parent:
// src is the posting shard, parent the global sequence stamp of the
// delivering token (or the global leaf index during seeding), idx the
// posting order under that parent. Sorting captures by (parent, idx)
// reconstructs exactly the order in which one scheduler would have
// sequenced them — the heart of the bit-identity argument.
type capture struct {
	src    int
	parent uint64
	idx    int
	tok    sim.Token
}

// shardState is one shard: its scheduler, context, leaves and the
// capture buffer its post intercept fills during delivery.
type shardState struct {
	sched      *sim.Scheduler
	ctx        *sim.Context
	caps       []capture
	delivering uint64
}

// engine coordinates the shards of one run.
type engine struct {
	plan   *Plan
	opts   Options
	shards []*shardState
	pool   sim.Pool
	gseq   uint64

	stats Stats
}

// Run executes the circuit across opts.Shards concurrent schedulers and
// returns the merged statistics. The simulated outcome — every module
// state trajectory, every recorded observation, every estimation sample
// in order — is bit-identical to module.Simulation.Start on one
// scheduler, for any shard count, worker count and window.
func Run(c *module.Circuit, opts Options) Stats {
	if opts.Shards < 1 {
		opts.Shards = 1
	}
	plan := opts.Plan
	if plan == nil {
		var err error
		plan, err = PartitionCircuit(c, opts.Shards)
		if err != nil {
			return Stats{Err: err}
		}
	}
	if opts.Setup != nil {
		module.ApplySetup(opts.Setup, c)
	}
	e := &engine{plan: plan, opts: opts, pool: sim.Pool{Workers: opts.Workers}}
	e.stats.CutCost = plan.CutCost
	perShard := make([]int, len(plan.Shards))
	for _, a := range plan.Assign {
		perShard[a]++
	}
	for i := range plan.Shards {
		s := &shardState{sched: sim.NewScheduler()}
		s.sched.ReserveTokens(4 * (perShard[i] + 1))
		s.ctx = s.sched.NewContext()
		s.ctx.Setup = opts.Setup
		src := i
		st := s
		s.sched.SetPostIntercept(func(tok sim.Token) bool {
			st.caps = append(st.caps, capture{src: src, parent: st.delivering, idx: len(st.caps), tok: tok})
			return true
		})
		e.shards = append(e.shards, s)
		e.stats.Schedulers = append(e.stats.Schedulers, s.sched.ID())
	}
	e.stats.owners = make(map[sim.Handler]sim.SchedulerID, 2*len(plan.Leaves))
	for i, m := range plan.Leaves {
		id := e.shards[plan.Assign[i]].sched.ID()
		e.stats.owners[m] = id
		e.stats.owners[skeletonOf(m)] = id
	}
	defer func() {
		for _, s := range e.shards {
			s.sched.SetPostIntercept(nil)
		}
		// Release per-scheduler module state, mirroring the controller;
		// observation histories survive for the caller to harvest.
		for _, s := range e.shards {
			for _, m := range plan.Leaves {
				if sh, ok := m.(sim.StateHolder); ok {
					sh.ReleaseState(s.sched.ID())
				}
			}
		}
	}()
	e.run()
	for _, s := range e.shards {
		e.stats.Delivered += s.sched.Delivered()
		if mq := s.sched.MaxQueueLen(); mq > e.stats.MaxQueue {
			e.stats.MaxQueue = mq
		}
	}
	return e.stats
}

// run seeds the shards and drives the barrier loop.
func (e *engine) run() {
	// Reset every leaf on its owning shard, walking the global leaf
	// order so seed tokens are sequenced exactly as one scheduler
	// resetting the same handler list would sequence them.
	for gi, m := range e.plan.Leaves {
		s := e.shards[e.plan.Assign[gi]]
		s.delivering = uint64(gi)
		if r, ok := m.(sim.Resettable); ok {
			r.ResetState(s.ctx)
		}
	}
	e.mergeCaptures()

	limit := e.opts.EventLimit
	if limit == 0 {
		limit = sim.DefaultEventLimit
	}
	window := e.opts.Window
	if window == 0 {
		window = DefaultWindow
	}
	instants := 0
	for {
		// Barrier: global lower-bound timestamp over every shard.
		e.stats.Barriers++
		T, active, _, ok := e.horizon()
		if !ok {
			return
		}
		if e.opts.Until != 0 && T > e.opts.Until {
			return
		}
		streak := 0
		for {
			crossed, err := e.runInstant(T, limit)
			if err != nil {
				e.stats.Err = err
				e.stats.EndTime = T
				return
			}
			e.stats.EndTime = T
			e.stats.Instants++
			instants++
			if e.opts.MaxInstants != 0 && instants >= e.opts.MaxInstants {
				return
			}
			// Conservative window: a shard that was alone below every
			// other shard's horizon may keep running instants without a
			// barrier while it stays strictly below that horizon (which
			// cannot move — nothing crossed the cut), posts nothing
			// across it, and the window grant lasts.
			streak++
			if active != 1 || crossed != 0 || streak >= window {
				break
			}
			nT, nActive, nOthers, nOk := e.horizon()
			if !nOk || nActive != 1 || nT >= nOthers {
				break
			}
			if e.opts.Until != 0 && nT > e.opts.Until {
				return
			}
			T, active = nT, nActive
			e.stats.SoloTurns++
		}
	}
}

// horizon computes the global minimum next-event time, how many shards
// sit exactly at it, and the minimum over the remaining shards (the solo
// shard's conservative bound; ^uint64(0)>>1 when none).
func (e *engine) horizon() (T sim.Time, active int, othersMin sim.Time, ok bool) {
	const inf = sim.Time(^uint64(0) >> 1)
	T, othersMin = inf, inf
	for _, s := range e.shards {
		nt, has := s.sched.NextEventTime()
		if !has {
			continue
		}
		switch {
		case nt < T:
			othersMin = T
			T, active = nt, 1
		case nt == T:
			active++
			othersMin = T
		default:
			if nt < othersMin {
				othersMin = nt
			}
		}
	}
	return T, active, othersMin, T != inf
}

// runInstant advances every shard to T and drains the instant in delta
// rounds: each round delivers, in parallel, every shard's tokens due at
// T in ascending stamp order while the post intercepts capture the
// children; the round barrier then merges the captures in (parent, idx)
// order, assigns them fresh global stamps and routes them to their
// owning shards. Zero-delay cross-shard connectors thus land in a later
// round of the same instant, exactly where one scheduler would have
// delivered them. Once no shard has tokens at T the instant is complete
// and estimation tokens go to every leaf in global order.
func (e *engine) runInstant(T sim.Time, limit uint64) (crossed int, err error) {
	for _, s := range e.shards {
		s.sched.AdvanceTo(T)
	}
	active := make([]int, 0, len(e.shards))
	for {
		active = active[:0]
		for i, s := range e.shards {
			if nt, ok := s.sched.NextEventTime(); ok && nt == T {
				active = append(active, i)
			}
		}
		if len(active) == 0 {
			break
		}
		e.stats.Rounds++
		e.pool.For(len(active), func(k int) error {
			s := e.shards[active[k]]
			for {
				tok, seq, ok := s.sched.PopDue(T)
				if !ok {
					return nil
				}
				s.delivering = seq
				s.sched.Deliver(s.ctx, tok)
			}
		})
		crossed += e.mergeCaptures()
		var delivered uint64
		for _, s := range e.shards {
			delivered += s.sched.Delivered()
		}
		if delivered > limit {
			return crossed, fmt.Errorf("%w (limit %d at time %d)", sim.ErrEventLimit, limit, T)
		}
	}
	if e.opts.Setup != nil {
		// End-of-instant estimation over every leaf in global order —
		// the single-scheduler instant hook verbatim, serialized so the
		// setup's sample record stays in canonical order.
		tok := &sim.EstimationToken{T: T, Setup: e.opts.Setup}
		for gi, m := range e.plan.Leaves {
			s := e.shards[e.plan.Assign[gi]]
			tok.Dst = m
			m.HandleToken(s.ctx, tok)
		}
	}
	return crossed, nil
}

// mergeCaptures globally sequences every captured post and enqueues it
// on the shard owning its target. (parent, idx) sorting restores the
// exact order a single scheduler's counter would have produced: parents
// are delivered in ascending stamp order, and a parent's posts keep
// their posting order. Returns the number of shard-crossing tokens.
func (e *engine) mergeCaptures() int {
	var all []capture
	for _, s := range e.shards {
		all = append(all, s.caps...)
		s.caps = s.caps[:0]
	}
	if len(all) == 0 {
		return 0
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].parent != all[b].parent {
			return all[a].parent < all[b].parent
		}
		return all[a].idx < all[b].idx
	})
	crossed := 0
	for _, c := range all {
		e.gseq++
		tgt, ok := e.plan.Owner(c.tok.Target())
		if !ok {
			panic(fmt.Sprintf("shard: token targets %s, which no shard owns",
				c.tok.Target().HandlerName()))
		}
		if tgt != c.src {
			crossed++
			e.stats.CrossTokens++
		}
		e.shards[tgt].sched.PostSequenced(c.tok, e.gseq)
	}
	return crossed
}
