package shard

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/module"
	"repro/internal/sim"
)

// buildStaggered returns a two-datapath design whose stimulus periods
// are coprime, so simulation instants alternate between the datapaths —
// the shape that exercises both delta rounds (shared instants) and solo
// turns (instants owned by one shard).
func buildStaggered(patterns int) (*module.Circuit, []*module.PrimaryOutput) {
	const w = 8
	a := module.NewWordConnector("A", w)
	ar := module.NewWordConnector("AR", w)
	b := module.NewWordConnector("B", w)
	br := module.NewWordConnector("BR", w)
	p := module.NewWordConnector("P", 2*w)
	c := module.NewWordConnector("C", w)
	cr := module.NewWordConnector("CR", w)
	d := module.NewWordConnector("D", w)
	s := module.NewWordConnector("S", w+1)

	ina := module.NewRandomPrimaryInput("INA", w, 7, patterns, 10, a)
	rega := module.NewRegister("REGA", w, a, ar)
	inb := module.NewRandomPrimaryInput("INB", w, 8, patterns, 10, b)
	regb := module.NewRegister("REGB", w, b, br)
	mult := module.NewMult("MULT", w, ar, br, p)
	out1 := module.NewPrimaryOutput("OUT1", 2*w, p)

	inc := module.NewRandomPrimaryInput("INC", w, 9, patterns, 7, c)
	regc := module.NewRegister("REGC", w, c, cr)
	ind := module.NewRandomPrimaryInput("IND", w, 10, patterns, 7, d)
	add := module.NewAdder("ADD", w, cr, d, s)
	out2 := module.NewPrimaryOutput("OUT2", w+1, s)

	left := module.NewCircuit("left", ina, rega, inb, regb, mult, out1)
	right := module.NewCircuit("right", inc, regc, ind, add, out2)
	top := module.NewCircuit("top", left, right)
	return top, []*module.PrimaryOutput{out1, out2}
}

// historyFingerprint renders the observation streams of the outputs, as
// recorded under the given per-output scheduler IDs, into one comparable
// string.
func historyFingerprint(outs []*module.PrimaryOutput, ids []sim.SchedulerID) string {
	var sb strings.Builder
	for i, out := range outs {
		fmt.Fprintf(&sb, "%s:", out.ModuleName())
		for _, obs := range out.History(ids[i]) {
			fmt.Fprintf(&sb, " %d=%v", obs.Time, obs.Value)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// classicFingerprint runs the design on one scheduler via the standard
// simulation controller and fingerprints the outputs.
func classicFingerprint(t *testing.T, c *module.Circuit, outs []*module.PrimaryOutput) string {
	t.Helper()
	stats := module.NewSimulation(c).Start(nil)
	if stats.Err != nil {
		t.Fatal(stats.Err)
	}
	ids := make([]sim.SchedulerID, len(outs))
	for i := range outs {
		ids[i] = stats.Scheduler
	}
	fp := historyFingerprint(outs, ids)
	for _, out := range outs {
		out.ReleaseHistory(stats.Scheduler)
	}
	return fp
}

// shardedFingerprint runs the design through the shard engine and
// fingerprints the outputs under their owning schedulers.
func shardedFingerprint(t *testing.T, c *module.Circuit, outs []*module.PrimaryOutput, opts Options) (string, Stats) {
	t.Helper()
	stats := Run(c, opts)
	if stats.Err != nil {
		t.Fatalf("shards=%d window=%d workers=%d: %v", opts.Shards, opts.Window, opts.Workers, stats.Err)
	}
	ids := make([]sim.SchedulerID, len(outs))
	for i, out := range outs {
		ids[i] = stats.OwnerOf(out)
		if ids[i] == 0 {
			t.Fatalf("no owner recorded for %s", out.ModuleName())
		}
	}
	fp := historyFingerprint(outs, ids)
	for i, out := range outs {
		out.ReleaseHistory(ids[i])
	}
	return fp, stats
}

// TestShardedMatchesSingleScheduler: the headline invariant on a
// hand-built design — the sharded run's observation streams are
// byte-identical to the classic single-scheduler run at every shard and
// worker count.
func TestShardedMatchesSingleScheduler(t *testing.T) {
	circuit, outs := buildStaggered(40)
	want := classicFingerprint(t, circuit, outs)
	if !strings.Contains(want, "=") {
		t.Fatalf("baseline produced no observations:\n%s", want)
	}
	for _, shards := range []int{1, 2, 3, 8} {
		for _, workers := range []int{1, 0} {
			got, stats := shardedFingerprint(t, circuit, outs,
				Options{Shards: shards, Workers: workers})
			if got != want {
				t.Fatalf("shards=%d workers=%d diverged\n got:\n%s want:\n%s",
					shards, workers, got, want)
			}
			if stats.Delivered == 0 || stats.Instants == 0 {
				t.Fatalf("shards=%d: empty run stats %+v", shards, stats)
			}
			// A zero-cost cut (disconnected datapaths split cleanly)
			// legitimately has no cross traffic; any cut connector must
			// carry tokens on this design.
			if stats.CutCost > 0 && stats.CrossTokens == 0 {
				t.Fatalf("shards=%d: cut cost %d but no cross-shard tokens", shards, stats.CutCost)
			}
			if shards >= 3 && stats.CutCost == 0 {
				t.Fatalf("shards=%d: expected a nonzero connector cut", shards)
			}
		}
	}
}

// TestShardWindowShrinkInvariance: shrinking the conservative window
// never changes results — only barrier count and runahead. The staggered
// design guarantees solo turns exist at a generous window.
func TestShardWindowShrinkInvariance(t *testing.T) {
	circuit, outs := buildStaggered(60)
	want := classicFingerprint(t, circuit, outs)
	var prevBarriers int
	first := true
	for _, window := range []int{64, 8, 2, 1} {
		got, stats := shardedFingerprint(t, circuit, outs,
			Options{Shards: 2, Window: window})
		if got != want {
			t.Fatalf("window=%d diverged from single-scheduler run", window)
		}
		if window == 64 && stats.SoloTurns == 0 {
			t.Fatalf("window=64 recorded no solo turns on a staggered design: %+v", stats)
		}
		if window == 1 && stats.SoloTurns != 0 {
			t.Fatalf("window=1 must barrier every instant, got %d solo turns", stats.SoloTurns)
		}
		if !first && stats.Barriers < prevBarriers {
			t.Fatalf("window=%d has fewer barriers (%d) than the wider window before it (%d)",
				window, stats.Barriers, prevBarriers)
		}
		first = false
		prevBarriers = stats.Barriers
	}
}

// TestShardEventLimit: the shared event budget surfaces the kernel's
// sentinel error instead of running away.
func TestShardEventLimit(t *testing.T) {
	circuit, _ := buildStaggered(50)
	stats := Run(circuit, Options{Shards: 2, EventLimit: 10})
	if !errors.Is(stats.Err, sim.ErrEventLimit) {
		t.Fatalf("err = %v, want wrapped sim.ErrEventLimit", stats.Err)
	}
}

// TestShardUntilBound: Until stops the sharded run at the same horizon
// as the single-scheduler run.
func TestShardUntilBound(t *testing.T) {
	const until = 35
	circuit, outs := buildStaggered(40)

	simu := module.NewSimulation(circuit)
	simu.Until = until
	st := simu.Start(nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	ids := make([]sim.SchedulerID, len(outs))
	for i := range outs {
		ids[i] = st.Scheduler
	}
	want := historyFingerprint(outs, ids)
	for _, out := range outs {
		out.ReleaseHistory(st.Scheduler)
	}

	got, stats := shardedFingerprint(t, circuit, outs,
		Options{Shards: 3, Until: until})
	if got != want {
		t.Fatalf("Until=%d diverged\n got:\n%s want:\n%s", until, got, want)
	}
	if stats.EndTime > until {
		t.Fatalf("EndTime %d beyond Until %d", stats.EndTime, until)
	}
}

// TestShardStateReleased: after a sharded run every leaf's per-scheduler
// state table is back to its pre-run size (the leak audit the controller
// provides for single runs).
func TestShardStateReleased(t *testing.T) {
	circuit, _ := buildStaggered(10)
	type stateLener interface{ StateLen() int }
	before := make(map[string]int)
	for _, m := range circuit.Leaves() {
		if sl, ok := m.(stateLener); ok {
			before[m.ModuleName()] = sl.StateLen()
		}
	}
	stats := Run(circuit, Options{Shards: 3})
	if stats.Err != nil {
		t.Fatal(stats.Err)
	}
	for _, m := range circuit.Leaves() {
		if sl, ok := m.(stateLener); ok {
			if got := sl.StateLen(); got != before[m.ModuleName()] {
				t.Fatalf("%s holds %d scheduler states after run, want %d",
					m.ModuleName(), got, before[m.ModuleName()])
			}
		}
	}
}
