package shard_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/shard"
)

// FuzzPartitionCircuit: for arbitrary seeded hierarchical circuits and
// arbitrary shard counts the partitioner must either reject the input
// or produce a plan that covers every leaf module exactly once, keeps
// shard assignments consistent, and neither drops nor duplicates a cut
// connector — Plan.Validate recomputes all of it independently. This is
// the structural invariant the bit-identity proof rests on: a leaf
// owned twice or a lost connector silently corrupts a sharded run.
func FuzzPartitionCircuit(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(3), uint8(4), uint8(2))
	f.Add(int64(2), uint8(1), uint8(1), uint8(1), uint8(1))
	f.Add(int64(3), uint8(6), uint8(4), uint8(6), uint8(8))
	f.Add(int64(1999), uint8(2), uint8(5), uint8(3), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, inputs, layers, ops, shards uint8) {
		spec := core.GenSpec{
			Inputs:   1 + int(inputs%8),
			Layers:   1 + int(layers%5),
			LayerOps: 1 + int(ops%8),
			Width:    4,
			Patterns: 2,
		}
		circuit, _ := core.GenerateCircuitRand(rand.New(rand.NewSource(seed)), spec)
		n := 1 + int(shards)
		p, err := shard.PartitionCircuit(circuit, n)
		if err != nil {
			t.Fatalf("partition of a generated circuit failed: %v", err)
		}
		if err := p.Validate(circuit); err != nil {
			t.Fatalf("seed=%d spec=%+v n=%d: invalid plan: %v", seed, spec, n, err)
		}
		// Partitioning is a pure function of (circuit, n): a second run
		// over the same design must produce the identical assignment.
		p2, err := shard.PartitionCircuit(circuit, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range p.Assign {
			if p.Assign[i] != p2.Assign[i] {
				t.Fatalf("partition not deterministic at leaf %d", i)
			}
		}
	})
}
