// Package shard partitions one hierarchical design across several
// concurrent schedulers and re-merges their event streams so the run is
// bit-identical to a single-scheduler simulation at any shard count.
//
// The paper's kernel permits "concurrent independent schedulers over one
// design" because every module keeps per-scheduler state; this package
// turns that permission into a distribution topology: a Partitioner cuts
// the module hierarchy by connector-cut cost, each shard owns its own
// scheduler, and a coordinator exchanges cross-shard tokens at
// conservative lower-bound-timestamp barriers. Delivery order inside a
// simulation instant is reconstructed exactly (see engine.go), which is
// what makes the merged result provably identical to the one-scheduler
// run — the invariant the shard determinism test matrix enforces.
package shard

import (
	"fmt"
	"sort"

	"repro/internal/module"
	"repro/internal/sim"
)

// Plan is a partition of a circuit's leaves into shards.
type Plan struct {
	// Leaves is the design's leaf list in global (depth-first) order —
	// the canonical order every determinism argument is anchored to.
	Leaves []module.Module
	// Assign maps a leaf's global index to its shard.
	Assign []int
	// Shards lists each shard's leaves, preserving global order within
	// the shard.
	Shards [][]module.Module
	// Cut lists every connector whose two ends live in different shards,
	// each exactly once, in global leaf/port discovery order.
	Cut []*module.Connector
	// CutCost is the summed width of the cut connectors — the objective
	// the greedy partitioner minimizes.
	CutCost int

	owner map[sim.Handler]int
}

// NumShards returns the number of shards in the plan.
func (p *Plan) NumShards() int { return len(p.Shards) }

// Owner returns the shard owning a handler (a leaf module or its
// embedded skeleton), with ok=false for handlers outside the plan.
func (p *Plan) Owner(h sim.Handler) (int, bool) {
	if s, ok := p.owner[h]; ok {
		return s, true
	}
	if b, ok := h.(interface{ Base() *module.Skeleton }); ok {
		if s, ok := p.owner[b.Base()]; ok {
			return s, true
		}
	}
	return 0, false
}

// skeletonOf returns the handler identity tokens are addressed to: the
// module's embedded skeleton (ports record it as their owner).
func skeletonOf(m module.Module) sim.Handler {
	if b, ok := m.(interface{ Base() *module.Skeleton }); ok {
		return b.Base()
	}
	return m
}

// PartitionCircuit cuts the circuit's leaves into n shards by greedy
// balanced growth over the connector graph: each shard is seeded with the
// lowest-index unassigned leaf and grown by repeatedly absorbing the
// unassigned leaf with the strongest connection (summed connector width)
// to the shard, ties resolved to the lowest leaf index, until the shard
// reaches its balanced target size. The result is deterministic for a
// given circuit and n. n larger than the leaf count is clamped.
func PartitionCircuit(c *module.Circuit, n int) (*Plan, error) {
	if n <= 0 {
		return nil, fmt.Errorf("shard: %d shards requested", n)
	}
	leaves := c.Leaves()
	if len(leaves) == 0 {
		return nil, fmt.Errorf("shard: circuit %q has no leaf modules", c.ModuleName())
	}
	if n > len(leaves) {
		n = len(leaves)
	}

	// Leaf index by skeleton identity, for resolving connector peers.
	idxOf := make(map[sim.Handler]int, len(leaves))
	for i, m := range leaves {
		idxOf[skeletonOf(m)] = i
	}

	// Neighbor lists with summed connector widths, built by iterating
	// ports in declaration order so the lists are deterministic.
	type edge struct{ to, w int }
	neighbors := make([][]edge, len(leaves))
	for i, m := range leaves {
		at := make(map[int]int) // neighbor index -> position in neighbors[i]
		for _, p := range m.Ports() {
			conn := p.Connector()
			if conn == nil {
				continue
			}
			peer := conn.Peer(p)
			if peer == nil {
				continue
			}
			j, ok := idxOf[peer.Owner()]
			if !ok || j == i {
				continue
			}
			w := conn.Width
			if w < 1 {
				w = 1
			}
			if pos, ok := at[j]; ok {
				neighbors[i][pos].w += w
			} else {
				at[j] = len(neighbors[i])
				neighbors[i] = append(neighbors[i], edge{to: j, w: w})
			}
		}
	}

	assign := make([]int, len(leaves))
	for i := range assign {
		assign[i] = -1
	}
	gain := make([]int, len(leaves))
	remaining := len(leaves)
	for s := 0; s < n; s++ {
		for i := range gain {
			gain[i] = 0
		}
		target := (remaining + (n - s) - 1) / (n - s)
		for size := 0; size < target; size++ {
			// Strongest-connected unassigned leaf; zero-gain fallback and
			// ties both resolve to the lowest index.
			pick, best := -1, -1
			for i := range leaves {
				if assign[i] != -1 {
					continue
				}
				if gain[i] > best {
					pick, best = i, gain[i]
				}
			}
			if pick == -1 {
				break
			}
			assign[pick] = s
			remaining--
			for _, e := range neighbors[pick] {
				if assign[e.to] == -1 {
					gain[e.to] += e.w
				}
			}
		}
	}

	p := &Plan{
		Leaves: leaves,
		Assign: assign,
		Shards: make([][]module.Module, n),
		owner:  make(map[sim.Handler]int, 2*len(leaves)),
	}
	for i, m := range leaves {
		s := assign[i]
		p.Shards[s] = append(p.Shards[s], m)
		p.owner[m] = s
		p.owner[skeletonOf(m)] = s
	}
	// Cut connectors, each exactly once (a membership set deduplicates
	// the two discovery directions).
	seen := make(map[*module.Connector]bool)
	for i, m := range leaves {
		for _, port := range m.Ports() {
			conn := port.Connector()
			if conn == nil || seen[conn] {
				continue
			}
			peer := conn.Peer(port)
			if peer == nil {
				continue
			}
			j, ok := idxOf[peer.Owner()]
			if !ok || assign[j] == assign[i] {
				continue
			}
			seen[conn] = true
			p.Cut = append(p.Cut, conn)
			w := conn.Width
			if w < 1 {
				w = 1
			}
			p.CutCost += w
		}
	}
	return p, nil
}

// Validate checks the plan against the circuit it claims to partition:
// every leaf covered exactly once, assignments consistent between Assign
// and Shards, and the cut holding exactly the shard-crossing connectors
// with no duplicates. The fuzz target drives arbitrary generated
// hierarchies through this.
func (p *Plan) Validate(c *module.Circuit) error {
	leaves := c.Leaves()
	if len(leaves) != len(p.Leaves) || len(p.Assign) != len(leaves) {
		return fmt.Errorf("shard: plan covers %d leaves, circuit has %d", len(p.Leaves), len(leaves))
	}
	seen := make(map[module.Module]int)
	total := 0
	for s, ms := range p.Shards {
		for _, m := range ms {
			seen[m]++
			total++
			if got, ok := p.Owner(m); !ok || got != s {
				return fmt.Errorf("shard: leaf %s listed in shard %d but owned by %d", m.ModuleName(), s, got)
			}
		}
	}
	if total != len(leaves) {
		return fmt.Errorf("shard: plan places %d leaves, want %d", total, len(leaves))
	}
	for i, m := range leaves {
		if seen[m] != 1 {
			return fmt.Errorf("shard: leaf %s covered %d times", m.ModuleName(), seen[m])
		}
		if p.Leaves[i] != m {
			return fmt.Errorf("shard: plan leaf order diverges from circuit at %d (%s)", i, m.ModuleName())
		}
		if s := p.Assign[i]; s < 0 || s >= len(p.Shards) {
			return fmt.Errorf("shard: leaf %s assigned to invalid shard %d", m.ModuleName(), s)
		}
	}
	// Recompute the crossing set and compare it to the plan's cut.
	idxOf := make(map[sim.Handler]int, len(leaves))
	for i, m := range leaves {
		idxOf[skeletonOf(m)] = i
	}
	want := make(map[*module.Connector]bool)
	cost := 0
	for i, m := range leaves {
		for _, port := range m.Ports() {
			conn := port.Connector()
			if conn == nil || want[conn] {
				continue
			}
			peer := conn.Peer(port)
			if peer == nil {
				continue
			}
			j, ok := idxOf[peer.Owner()]
			if !ok || p.Assign[j] == p.Assign[i] {
				continue
			}
			want[conn] = true
			if conn.Width < 1 {
				cost++
			} else {
				cost += conn.Width
			}
		}
	}
	if len(p.Cut) != len(want) || p.CutCost != cost {
		return fmt.Errorf("shard: cut has %d connectors cost %d, want %d cost %d",
			len(p.Cut), p.CutCost, len(want), cost)
	}
	got := make(map[*module.Connector]int)
	for _, conn := range p.Cut {
		got[conn]++
		if got[conn] > 1 {
			return fmt.Errorf("shard: connector %q duplicated in cut", conn.Name)
		}
		if !want[conn] {
			return fmt.Errorf("shard: connector %q in cut but not shard-crossing", conn.Name)
		}
	}
	// Determinism spot check: shard sizes differ by at most the greedy
	// imbalance bound (ceil split), i.e. the plan is balanced.
	sizes := make([]int, len(p.Shards))
	for s, ms := range p.Shards {
		sizes[s] = len(ms)
	}
	sorted := append([]int(nil), sizes...)
	sort.Ints(sorted)
	if len(sorted) > 0 && sorted[0] == 0 {
		return fmt.Errorf("shard: empty shard in plan (sizes %v)", sizes)
	}
	return nil
}
