package shard

import (
	"reflect"
	"testing"

	"repro/internal/module"
)

func TestPartitionRejectsBadInput(t *testing.T) {
	circuit, _ := buildStaggered(5)
	if _, err := PartitionCircuit(circuit, 0); err == nil {
		t.Fatal("0 shards accepted")
	}
	if _, err := PartitionCircuit(circuit, -2); err == nil {
		t.Fatal("negative shards accepted")
	}
	if _, err := PartitionCircuit(module.NewCircuit("empty"), 2); err == nil {
		t.Fatal("empty circuit accepted")
	}
}

func TestPartitionClampsToLeafCount(t *testing.T) {
	circuit, _ := buildStaggered(5)
	n := len(circuit.Leaves())
	p, err := PartitionCircuit(circuit, n+50)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards() != n {
		t.Fatalf("got %d shards for %d leaves, want clamp to %d", p.NumShards(), n, n)
	}
	if err := p.Validate(circuit); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionCoversAndBalances(t *testing.T) {
	circuit, _ := buildStaggered(5)
	leaves := len(circuit.Leaves())
	for n := 1; n <= leaves; n++ {
		p, err := PartitionCircuit(circuit, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := p.Validate(circuit); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		min, max := leaves, 0
		for _, s := range p.Shards {
			if len(s) < min {
				min = len(s)
			}
			if len(s) > max {
				max = len(s)
			}
		}
		if max-min > 1 {
			t.Fatalf("n=%d: shard sizes spread %d..%d, want balanced within 1", n, min, max)
		}
	}
}

// TestPartitionIsDeterministic: the same circuit and shard count always
// produce the identical assignment and cut.
func TestPartitionIsDeterministic(t *testing.T) {
	circuit, _ := buildStaggered(5)
	first, err := PartitionCircuit(circuit, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		p, err := PartitionCircuit(circuit, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(p.Assign, first.Assign) {
			t.Fatalf("run %d assignment %v differs from %v", i, p.Assign, first.Assign)
		}
		if len(p.Cut) != len(first.Cut) || p.CutCost != first.CutCost {
			t.Fatalf("run %d cut %d/%d differs from %d/%d",
				i, len(p.Cut), p.CutCost, len(first.Cut), first.CutCost)
		}
		for j := range p.Cut {
			if p.Cut[j] != first.Cut[j] {
				t.Fatalf("run %d cut order differs at %d", i, j)
			}
		}
	}
}

// TestPartitionPrefersConnectivity: splitting two disconnected datapaths
// into two shards must cut nothing — the greedy growth follows connector
// weight, so each datapath lands whole in one shard.
func TestPartitionPrefersConnectivity(t *testing.T) {
	circuit, _ := buildStaggered(5)
	p, err := PartitionCircuit(circuit, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.CutCost != 0 || len(p.Cut) != 0 {
		t.Fatalf("two disconnected datapaths cut with cost %d (%d connectors); want 0",
			p.CutCost, len(p.Cut))
	}
}

// TestPlanOwnerResolvesSkeletons: ownership lookups work both by module
// value and by the embedded skeleton tokens are addressed to.
func TestPlanOwnerResolvesSkeletons(t *testing.T) {
	circuit, outs := buildStaggered(5)
	p, err := PartitionCircuit(circuit, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, out := range outs {
		byModule, ok1 := p.Owner(out)
		bySkeleton, ok2 := p.Owner(out.Base())
		if !ok1 || !ok2 || byModule != bySkeleton {
			t.Fatalf("owner lookup diverges for %s: module %d,%v skeleton %d,%v",
				out.ModuleName(), byModule, ok1, bySkeleton, ok2)
		}
	}
	if _, ok := p.Owner(module.NewPrimaryOutput("stranger", 1, nil)); ok {
		t.Fatal("foreign module resolved to an owner")
	}
}
