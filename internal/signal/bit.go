// Package signal defines the logic-value system shared by every event in
// the gocad simulation kernel: four-valued single bits (0, 1, X, Z) and
// multi-bit words. These are the payloads carried by signal tokens across
// connectors, and the values exchanged with remote IP components — by
// design the ONLY design information that may cross the IP-protection
// boundary (see internal/security).
package signal

import "fmt"

// Bit is a four-valued logic level, following the usual HDL semantics:
// strong low, strong high, unknown, and high impedance.
type Bit uint8

// The four logic levels. The zero value is B0 so that freshly allocated
// words start at logic low, matching a powered-up-and-reset net.
const (
	B0 Bit = iota // strong logic low
	B1            // strong logic high
	BX            // unknown
	BZ            // high impedance (undriven)
)

// nBits is the number of distinct logic levels; used to size lookup tables.
const nBits = 4

// String returns the single-character HDL spelling of the level.
func (b Bit) String() string {
	switch b {
	case B0:
		return "0"
	case B1:
		return "1"
	case BX:
		return "X"
	case BZ:
		return "Z"
	}
	return fmt.Sprintf("Bit(%d)", uint8(b))
}

// Valid reports whether b is one of the four defined levels.
func (b Bit) Valid() bool { return b < nBits }

// Known reports whether b carries a definite binary value (0 or 1).
func (b Bit) Known() bool { return b == B0 || b == B1 }

// Bool converts a known bit to a Go bool. It reports ok=false for X or Z.
func (b Bit) Bool() (v, ok bool) {
	switch b {
	case B0:
		return false, true
	case B1:
		return true, true
	}
	return false, false
}

// FromBool converts a Go bool to a strong logic level.
func FromBool(v bool) Bit {
	if v {
		return B1
	}
	return B0
}

// ParseBit converts the single-character HDL spelling back to a Bit.
// It accepts 0, 1, x, X, z and Z.
func ParseBit(c byte) (Bit, error) {
	switch c {
	case '0':
		return B0, nil
	case '1':
		return B1, nil
	case 'x', 'X':
		return BX, nil
	case 'z', 'Z':
		return BZ, nil
	}
	return BX, fmt.Errorf("signal: invalid bit character %q", c)
}

// Four-valued truth tables. A Z input behaves as X for logic operators
// (an undriven input to a gate reads as unknown), which is the standard
// pessimistic composition rule used by event-driven gate simulators.
var (
	andTable [nBits][nBits]Bit
	orTable  [nBits][nBits]Bit
	xorTable [nBits][nBits]Bit
	notTable [nBits]Bit
)

func init() {
	// Normalize Z to X on gate inputs.
	norm := func(b Bit) Bit {
		if b == BZ {
			return BX
		}
		return b
	}
	for a := Bit(0); a < nBits; a++ {
		na := norm(a)
		notTable[a] = BX
		if na == B0 {
			notTable[a] = B1
		} else if na == B1 {
			notTable[a] = B0
		}
		for b := Bit(0); b < nBits; b++ {
			nb := norm(b)
			// AND: 0 dominates; 1&1=1; anything else X.
			switch {
			case na == B0 || nb == B0:
				andTable[a][b] = B0
			case na == B1 && nb == B1:
				andTable[a][b] = B1
			default:
				andTable[a][b] = BX
			}
			// OR: 1 dominates; 0|0=0; anything else X.
			switch {
			case na == B1 || nb == B1:
				orTable[a][b] = B1
			case na == B0 && nb == B0:
				orTable[a][b] = B0
			default:
				orTable[a][b] = BX
			}
			// XOR: known^known, else X.
			if na.Known() && nb.Known() {
				if na != nb {
					xorTable[a][b] = B1
				} else {
					xorTable[a][b] = B0
				}
			} else {
				xorTable[a][b] = BX
			}
		}
	}
}

// And returns the four-valued conjunction of b and o.
func (b Bit) And(o Bit) Bit { return andTable[b&3][o&3] }

// Or returns the four-valued disjunction of b and o.
func (b Bit) Or(o Bit) Bit { return orTable[b&3][o&3] }

// Xor returns the four-valued exclusive-or of b and o.
func (b Bit) Xor(o Bit) Bit { return xorTable[b&3][o&3] }

// Not returns the four-valued negation of b.
func (b Bit) Not() Bit { return notTable[b&3] }

// Nand returns NOT(b AND o).
func (b Bit) Nand(o Bit) Bit { return b.And(o).Not() }

// Nor returns NOT(b OR o).
func (b Bit) Nor(o Bit) Bit { return b.Or(o).Not() }

// Xnor returns NOT(b XOR o).
func (b Bit) Xnor(o Bit) Bit { return b.Xor(o).Not() }

// Resolve merges two drivers of the same net, as a tristate bus would:
// Z yields to the other driver, equal values agree, and conflicting or
// unknown strong drivers resolve to X.
func (b Bit) Resolve(o Bit) Bit {
	switch {
	case b == BZ:
		return o
	case o == BZ:
		return b
	case b == o:
		return b
	default:
		return BX
	}
}
