package signal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitString(t *testing.T) {
	cases := map[Bit]string{B0: "0", B1: "1", BX: "X", BZ: "Z"}
	for b, want := range cases {
		if got := b.String(); got != want {
			t.Errorf("Bit(%d).String() = %q, want %q", b, got, want)
		}
	}
	if got := Bit(7).String(); got != "Bit(7)" {
		t.Errorf("invalid bit String() = %q", got)
	}
}

func TestBitValid(t *testing.T) {
	for b := Bit(0); b < 4; b++ {
		if !b.Valid() {
			t.Errorf("Bit(%d).Valid() = false", b)
		}
	}
	if Bit(4).Valid() {
		t.Error("Bit(4).Valid() = true")
	}
}

func TestBitKnownBool(t *testing.T) {
	if !B0.Known() || !B1.Known() {
		t.Error("0/1 must be Known")
	}
	if BX.Known() || BZ.Known() {
		t.Error("X/Z must not be Known")
	}
	if v, ok := B1.Bool(); !ok || !v {
		t.Errorf("B1.Bool() = %v, %v", v, ok)
	}
	if v, ok := B0.Bool(); !ok || v {
		t.Errorf("B0.Bool() = %v, %v", v, ok)
	}
	if _, ok := BX.Bool(); ok {
		t.Error("BX.Bool() ok = true")
	}
	if _, ok := BZ.Bool(); ok {
		t.Error("BZ.Bool() ok = true")
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != B1 || FromBool(false) != B0 {
		t.Error("FromBool mapping wrong")
	}
}

func TestParseBit(t *testing.T) {
	good := map[byte]Bit{'0': B0, '1': B1, 'x': BX, 'X': BX, 'z': BZ, 'Z': BZ}
	for c, want := range good {
		got, err := ParseBit(c)
		if err != nil || got != want {
			t.Errorf("ParseBit(%q) = %v, %v; want %v", c, got, err, want)
		}
	}
	if _, err := ParseBit('q'); err == nil {
		t.Error("ParseBit('q') did not fail")
	}
}

func TestBitAndTruthTable(t *testing.T) {
	// Binary subset must match Boolean AND.
	for _, a := range []Bit{B0, B1} {
		for _, b := range []Bit{B0, B1} {
			av, _ := a.Bool()
			bv, _ := b.Bool()
			if got := a.And(b); got != FromBool(av && bv) {
				t.Errorf("%v AND %v = %v", a, b, got)
			}
		}
	}
	// 0 dominates regardless of the unknown operand.
	for _, u := range []Bit{BX, BZ} {
		if B0.And(u) != B0 || u.And(B0) != B0 {
			t.Errorf("0 AND %v must be 0", u)
		}
		if B1.And(u) != BX || u.And(B1) != BX {
			t.Errorf("1 AND %v must be X", u)
		}
	}
	if BX.And(BX) != BX || BZ.And(BZ) != BX {
		t.Error("unknown AND unknown must be X")
	}
}

func TestBitOrTruthTable(t *testing.T) {
	for _, a := range []Bit{B0, B1} {
		for _, b := range []Bit{B0, B1} {
			av, _ := a.Bool()
			bv, _ := b.Bool()
			if got := a.Or(b); got != FromBool(av || bv) {
				t.Errorf("%v OR %v = %v", a, b, got)
			}
		}
	}
	for _, u := range []Bit{BX, BZ} {
		if B1.Or(u) != B1 || u.Or(B1) != B1 {
			t.Errorf("1 OR %v must be 1", u)
		}
		if B0.Or(u) != BX || u.Or(B0) != BX {
			t.Errorf("0 OR %v must be X", u)
		}
	}
}

func TestBitXorNot(t *testing.T) {
	if B0.Xor(B1) != B1 || B1.Xor(B1) != B0 || B0.Xor(B0) != B0 {
		t.Error("binary XOR wrong")
	}
	for _, u := range []Bit{BX, BZ} {
		if B0.Xor(u) != BX || B1.Xor(u) != BX {
			t.Errorf("XOR with %v must be X", u)
		}
		if u.Not() != BX {
			t.Errorf("NOT %v must be X", u)
		}
	}
	if B0.Not() != B1 || B1.Not() != B0 {
		t.Error("binary NOT wrong")
	}
}

func TestBitDerivedGates(t *testing.T) {
	for a := Bit(0); a < 4; a++ {
		for b := Bit(0); b < 4; b++ {
			if a.Nand(b) != a.And(b).Not() {
				t.Errorf("NAND(%v,%v) inconsistent", a, b)
			}
			if a.Nor(b) != a.Or(b).Not() {
				t.Errorf("NOR(%v,%v) inconsistent", a, b)
			}
			if a.Xnor(b) != a.Xor(b).Not() {
				t.Errorf("XNOR(%v,%v) inconsistent", a, b)
			}
		}
	}
}

func TestBitResolve(t *testing.T) {
	if BZ.Resolve(B1) != B1 || B1.Resolve(BZ) != B1 {
		t.Error("Z must yield to the other driver")
	}
	if BZ.Resolve(BZ) != BZ {
		t.Error("Z resolve Z must remain Z")
	}
	if B0.Resolve(B1) != BX || B1.Resolve(B0) != BX {
		t.Error("conflicting drivers must be X")
	}
	if B1.Resolve(B1) != B1 || B0.Resolve(B0) != B0 {
		t.Error("agreeing drivers must keep their value")
	}
}

// randomBit generates one of the four levels from a rand source.
func randomBit(r *rand.Rand) Bit { return Bit(r.Intn(4)) }

func TestBitCommutativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomBit(r), randomBit(r)
		return a.And(b) == b.And(a) && a.Or(b) == b.Or(a) && a.Xor(b) == b.Xor(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitDeMorganProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomBit(r), randomBit(r)
		return a.And(b).Not() == a.Not().Or(b.Not()) &&
			a.Or(b).Not() == a.Not().And(b.Not())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitMonotonicityProperty(t *testing.T) {
	// Pessimism property: if an operator yields a known result with an X
	// input, the result must be identical for both refinements of that X.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := randomBit(r)
		ops := []func(Bit, Bit) Bit{Bit.And, Bit.Or, Bit.Xor}
		for _, op := range ops {
			got := op(BX, b)
			if got.Known() && (op(B0, b) != got || op(B1, b) != got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
