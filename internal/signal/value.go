package signal

import "fmt"

// Value is the interface satisfied by every payload a signal token can
// carry across a connector. The two built-in implementations are BitValue
// (gate-level connectors) and WordValue (word-level connectors); custom
// connectors for abstract representations — the paper's example is video
// frames handled by a DSP — implement Value for their own payload types.
type Value interface {
	fmt.Stringer
	// ValueWidth returns the bit width of the payload, or 0 when width
	// is not meaningful for the representation.
	ValueWidth() int
	// EqualValue reports whether the payload equals another of the same
	// dynamic type. Values of different types are never equal.
	EqualValue(Value) bool
	// CloneValue returns an independent deep copy.
	CloneValue() Value
}

// BitValue adapts a single Bit to the Value interface.
type BitValue struct{ B Bit }

// ValueWidth returns 1.
func (v BitValue) ValueWidth() int { return 1 }

// EqualValue reports equality with another BitValue.
func (v BitValue) EqualValue(o Value) bool {
	ov, ok := o.(BitValue)
	return ok && ov.B == v.B
}

// CloneValue returns v itself; BitValue is already immutable.
func (v BitValue) CloneValue() Value { return v }

// String returns the single-character spelling of the bit.
func (v BitValue) String() string { return v.B.String() }

// WordValue adapts a Word to the Value interface.
type WordValue struct{ W Word }

// ValueWidth returns the word width.
func (v WordValue) ValueWidth() int { return v.W.Width() }

// EqualValue reports equality with another WordValue.
func (v WordValue) EqualValue(o Value) bool {
	ov, ok := o.(WordValue)
	return ok && ov.W.Equal(v.W)
}

// CloneValue deep-copies the underlying word.
func (v WordValue) CloneValue() Value { return WordValue{W: v.W.Clone()} }

// String returns the MSB-first spelling of the word.
func (v WordValue) String() string { return v.W.String() }
