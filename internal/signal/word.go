package signal

import (
	"fmt"
	"strings"
)

// Word is a fixed-width vector of four-valued bits, stored LSB-first
// (Bits[0] is bit 0). It is the payload of word-level connectors — the
// register-transfer-level counterpart of a single Bit on a gate-level
// connector.
//
// Word values are treated as immutable once published into the simulator;
// producers must use Clone (or the constructors) rather than mutating a
// word that has already been sent.
type Word struct {
	Bits []Bit
}

// NewWord returns an all-zero word of the given width.
func NewWord(width int) Word {
	if width < 0 {
		panic(fmt.Sprintf("signal: negative word width %d", width))
	}
	return Word{Bits: make([]Bit, width)}
}

// UnknownWord returns a word of the given width with every bit X —
// the canonical "not yet driven" RTL value.
func UnknownWord(width int) Word {
	w := NewWord(width)
	for i := range w.Bits {
		w.Bits[i] = BX
	}
	return w
}

// WordFromUint64 builds a known word of the given width from the low
// `width` bits of v. Widths above 64 zero-extend.
func WordFromUint64(v uint64, width int) Word {
	w := NewWord(width)
	for i := 0; i < width && i < 64; i++ {
		if v&(1<<uint(i)) != 0 {
			w.Bits[i] = B1
		}
	}
	return w
}

// ParseWord builds a word from its MSB-first string spelling, e.g. "1X0Z".
func ParseWord(s string) (Word, error) {
	w := NewWord(len(s))
	for i := 0; i < len(s); i++ {
		b, err := ParseBit(s[i])
		if err != nil {
			return Word{}, err
		}
		w.Bits[len(s)-1-i] = b
	}
	return w, nil
}

// Width returns the number of bits in the word.
func (w Word) Width() int { return len(w.Bits) }

// Known reports whether every bit carries a definite binary value.
func (w Word) Known() bool {
	for _, b := range w.Bits {
		if !b.Known() {
			return false
		}
	}
	return true
}

// Uint64 converts a known word of width ≤ 64 to an unsigned integer.
// ok is false if any bit is X/Z or the word is wider than 64 bits.
func (w Word) Uint64() (v uint64, ok bool) {
	if len(w.Bits) > 64 {
		return 0, false
	}
	for i, b := range w.Bits {
		bv, known := b.Bool()
		if !known {
			return 0, false
		}
		if bv {
			v |= 1 << uint(i)
		}
	}
	return v, true
}

// Bit returns bit i (LSB = 0), or BX if i is out of range.
func (w Word) Bit(i int) Bit {
	if i < 0 || i >= len(w.Bits) {
		return BX
	}
	return w.Bits[i]
}

// Clone returns an independent deep copy of the word.
func (w Word) Clone() Word {
	c := Word{Bits: make([]Bit, len(w.Bits))}
	copy(c.Bits, w.Bits)
	return c
}

// Equal reports whether both words have identical width and bit levels.
// X compares equal only to X (this is identity of the simulation value,
// not HDL case-equality semantics).
func (w Word) Equal(o Word) bool {
	if len(w.Bits) != len(o.Bits) {
		return false
	}
	for i := range w.Bits {
		if w.Bits[i] != o.Bits[i] {
			return false
		}
	}
	return true
}

// String renders the word MSB-first, e.g. a 4-bit word holding 6 is "0110".
func (w Word) String() string {
	var sb strings.Builder
	sb.Grow(len(w.Bits))
	for i := len(w.Bits) - 1; i >= 0; i-- {
		sb.WriteString(w.Bits[i].String())
	}
	return sb.String()
}

// Slice returns bits [lo, hi) as a new word. It panics on an invalid range.
func (w Word) Slice(lo, hi int) Word {
	if lo < 0 || hi > len(w.Bits) || lo > hi {
		panic(fmt.Sprintf("signal: invalid word slice [%d,%d) of width %d", lo, hi, len(w.Bits)))
	}
	c := Word{Bits: make([]Bit, hi-lo)}
	copy(c.Bits, w.Bits[lo:hi])
	return c
}

// Concat returns the word whose low bits are w and high bits are hi.
func (w Word) Concat(hi Word) Word {
	c := Word{Bits: make([]Bit, 0, len(w.Bits)+len(hi.Bits))}
	c.Bits = append(c.Bits, w.Bits...)
	c.Bits = append(c.Bits, hi.Bits...)
	return c
}

// ToggleCount returns the number of bit positions where w and prev hold
// different known values — the Hamming distance used by toggle-based
// power estimation. Transitions to or from X/Z are not counted.
func (w Word) ToggleCount(prev Word) int {
	n := 0
	for i := 0; i < len(w.Bits) && i < len(prev.Bits); i++ {
		if w.Bits[i].Known() && prev.Bits[i].Known() && w.Bits[i] != prev.Bits[i] {
			n++
		}
	}
	return n
}
