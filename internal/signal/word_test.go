package signal

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewWordZero(t *testing.T) {
	w := NewWord(8)
	if w.Width() != 8 {
		t.Fatalf("width = %d", w.Width())
	}
	v, ok := w.Uint64()
	if !ok || v != 0 {
		t.Errorf("zero word Uint64 = %d, %v", v, ok)
	}
}

func TestNewWordNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWord(-1) did not panic")
		}
	}()
	NewWord(-1)
}

func TestUnknownWord(t *testing.T) {
	w := UnknownWord(4)
	if w.Known() {
		t.Error("UnknownWord reported Known")
	}
	if _, ok := w.Uint64(); ok {
		t.Error("UnknownWord converted to uint64")
	}
	for i := 0; i < 4; i++ {
		if w.Bit(i) != BX {
			t.Errorf("bit %d = %v, want X", i, w.Bit(i))
		}
	}
}

func TestWordFromUint64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		w := WordFromUint64(v, 64)
		got, ok := w.Uint64()
		return ok && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordFromUint64Truncates(t *testing.T) {
	w := WordFromUint64(0xFF, 4)
	v, ok := w.Uint64()
	if !ok || v != 0xF {
		t.Errorf("truncated word = %d, %v; want 15", v, ok)
	}
}

func TestWordUint64TooWide(t *testing.T) {
	w := NewWord(65)
	if _, ok := w.Uint64(); ok {
		t.Error("65-bit word converted to uint64")
	}
}

func TestParseWordAndString(t *testing.T) {
	w, err := ParseWord("1X0Z")
	if err != nil {
		t.Fatal(err)
	}
	if got := w.String(); got != "1X0Z" {
		t.Errorf("round trip = %q", got)
	}
	// MSB-first: "1X0Z" → bit3=1, bit2=X, bit1=0, bit0=Z.
	if w.Bit(3) != B1 || w.Bit(2) != BX || w.Bit(1) != B0 || w.Bit(0) != BZ {
		t.Errorf("bit layout wrong: %v", w.Bits)
	}
	if _, err := ParseWord("10q"); err == nil {
		t.Error("ParseWord accepted invalid char")
	}
}

func TestWordStringValueAgreement(t *testing.T) {
	w := WordFromUint64(6, 4)
	if got := w.String(); got != "0110" {
		t.Errorf("WordFromUint64(6,4).String() = %q, want 0110", got)
	}
}

func TestWordBitOutOfRange(t *testing.T) {
	w := NewWord(4)
	if w.Bit(-1) != BX || w.Bit(4) != BX {
		t.Error("out-of-range Bit() must return X")
	}
}

func TestWordCloneIndependence(t *testing.T) {
	w := WordFromUint64(5, 4)
	c := w.Clone()
	c.Bits[0] = BX
	if !w.Known() {
		t.Error("mutating clone affected original")
	}
}

func TestWordEqual(t *testing.T) {
	a := WordFromUint64(5, 4)
	b := WordFromUint64(5, 4)
	c := WordFromUint64(5, 5)
	d := WordFromUint64(4, 4)
	if !a.Equal(b) {
		t.Error("equal words compared unequal")
	}
	if a.Equal(c) {
		t.Error("different widths compared equal")
	}
	if a.Equal(d) {
		t.Error("different values compared equal")
	}
}

func TestWordSlice(t *testing.T) {
	w, _ := ParseWord("1100")
	lo := w.Slice(0, 2)
	if lo.String() != "00" {
		t.Errorf("low slice = %q", lo.String())
	}
	hi := w.Slice(2, 4)
	if hi.String() != "11" {
		t.Errorf("high slice = %q", hi.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid slice did not panic")
		}
	}()
	w.Slice(3, 2)
}

func TestWordConcat(t *testing.T) {
	lo, _ := ParseWord("01")
	hi, _ := ParseWord("10")
	c := lo.Concat(hi)
	if c.String() != "1001" {
		t.Errorf("concat = %q, want 1001", c.String())
	}
}

func TestWordToggleCount(t *testing.T) {
	a, _ := ParseWord("1010")
	b, _ := ParseWord("0110")
	if n := a.ToggleCount(b); n != 2 {
		t.Errorf("toggles = %d, want 2", n)
	}
	x, _ := ParseWord("10X0")
	if n := a.ToggleCount(x); n != 0 {
		t.Errorf("toggles vs X word = %d, want 0", n)
	}
}

func TestWordToggleCountSymmetryProperty(t *testing.T) {
	f := func(av, bv uint64) bool {
		a := WordFromUint64(av, 32)
		b := WordFromUint64(bv, 32)
		return a.ToggleCount(b) == b.ToggleCount(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWordSliceConcatInverseProperty(t *testing.T) {
	f := func(v uint64, split uint8) bool {
		w := WordFromUint64(v, 32)
		k := int(split) % 33
		return w.Slice(0, k).Concat(w.Slice(k, 32)).Equal(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitValueInterface(t *testing.T) {
	var v Value = BitValue{B: B1}
	if v.ValueWidth() != 1 || v.String() != "1" {
		t.Error("BitValue basics wrong")
	}
	if !v.EqualValue(BitValue{B: B1}) || v.EqualValue(BitValue{B: B0}) {
		t.Error("BitValue equality wrong")
	}
	if v.EqualValue(WordValue{W: WordFromUint64(1, 1)}) {
		t.Error("cross-type equality must be false")
	}
	if !v.CloneValue().EqualValue(v) {
		t.Error("clone must equal original")
	}
}

func TestWordValueInterface(t *testing.T) {
	w := WordFromUint64(9, 4)
	var v Value = WordValue{W: w}
	if v.ValueWidth() != 4 || v.String() != "1001" {
		t.Error("WordValue basics wrong")
	}
	c := v.CloneValue().(WordValue)
	c.W.Bits[0] = BX
	if !v.EqualValue(WordValue{W: WordFromUint64(9, 4)}) {
		t.Error("mutating clone affected original")
	}
	if v.EqualValue(BitValue{B: B1}) {
		t.Error("cross-type equality must be false")
	}
}

func TestWordRandomRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 200; i++ {
		width := 1 + r.Intn(64)
		v := r.Uint64()
		if width < 64 {
			v &= (1 << uint(width)) - 1
		}
		w := WordFromUint64(v, width)
		got, ok := w.Uint64()
		if !ok || got != v {
			t.Fatalf("width %d value %d: round trip %d, %v", width, v, got, ok)
		}
		parsed, err := ParseWord(w.String())
		if err != nil || !parsed.Equal(w) {
			t.Fatalf("string round trip failed for %v", w)
		}
	}
}
