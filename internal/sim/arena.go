package sim

// tokenArena is a per-scheduler slab allocator for SignalTokens: tokens
// are carved from contiguous slabs and recycled through a free list, so
// a scheduler's steady-state token traffic touches no global state (the
// process-wide sync.Pool of AcquireSignalToken) and allocates nothing
// once the slabs have grown to the design's live-token high-water mark.
//
// An arena is confined to its scheduler exactly as the scheduler is
// confined to one goroutine, so neither acquire nor release locks.
// Token ownership follows DELIVERY, not origin: a token acquired from
// scheduler A's arena and migrated across a shard boundary is released
// into the arena of the scheduler that delivers it. That keeps release
// single-writer under the shard engine — each scheduler's arena is only
// touched by whichever worker is running that scheduler's instant, and
// the engine's round barrier orders the rounds.
type tokenArena struct {
	free []*SignalToken
	slab []SignalToken
	next int // first uncarved slot of slab
}

// arenaMinSlab and arenaMaxSlab bound the doubling growth of slab sizes:
// small designs should not commit pages they never use, and a pathological
// design should grow linearly past the cap rather than doubling forever.
const (
	arenaMinSlab = 64
	arenaMaxSlab = 1 << 16
)

// reserve pre-sizes the arena so at least n tokens can be acquired
// without allocating mid-run. Controllers call it once, sized from the
// circuit, before the run starts.
func (a *tokenArena) reserve(n int) {
	if avail := len(a.free) + (len(a.slab) - a.next); avail >= n {
		return
	}
	a.slab = make([]SignalToken, n)
	a.next = 0
}

// acquire returns a zeroed arena-owned token.
//
//gocad:noalloc
func (a *tokenArena) acquire() *SignalToken {
	if n := len(a.free); n > 0 {
		t := a.free[n-1]
		a.free[n-1] = nil
		a.free = a.free[:n-1]
		return t
	}
	if a.next == len(a.slab) {
		a.grow()
	}
	t := &a.slab[a.next]
	a.next++
	t.arenaOwned = true
	return t
}

// grow replaces an exhausted slab with a doubled one (bounded by
// arenaMinSlab/arenaMaxSlab). Outlined from acquire and kept out of the
// inliner so the slab allocation stays attributed here, off acquire's
// //gocad:noalloc steady-state path.
//
//go:noinline
func (a *tokenArena) grow() {
	size := len(a.slab) * 2
	switch {
	case size < arenaMinSlab:
		size = arenaMinSlab
	case size > arenaMaxSlab:
		size = arenaMaxSlab
	}
	// The retired slab is not retained: its tokens live on through the
	// free list for as long as they circulate.
	a.slab = make([]SignalToken, size)
	a.next = 0
}

// release zeroes a token and returns it to the free list. The caller
// must not touch the token afterwards — it will be handed out again.
//
//gocad:noalloc
func (a *tokenArena) release(t *SignalToken) {
	*t = SignalToken{arenaOwned: true}
	a.free = append(a.free, t)
}
