package sim

import (
	"testing"

	"repro/internal/signal"
)

// TestArenaSignalTokenDelivery mirrors the pooled-token contract for
// arena tokens: acquired fields deliver intact, and free-list recycling
// across many events never cross-contaminates deliveries.
func TestArenaSignalTokenDelivery(t *testing.T) {
	h := &recordingHandler{}
	s := NewScheduler()
	ctx := s.NewContext()
	const n = 100
	for i := 0; i < n; i++ {
		var b signal.Bit
		if i%2 == 1 {
			b = signal.B1
		}
		ctx.Post(ctx.AcquireSignal(Time(i+1), h, i, signal.BitValue{B: b}, "src"))
	}
	if err := s.Run(ctx, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(h.ports) != n {
		t.Fatalf("delivered %d tokens, want %d", len(h.ports), n)
	}
	for i := 0; i < n; i++ {
		if h.ports[i] != i {
			t.Fatalf("delivery %d carried port %d", i, h.ports[i])
		}
		want := i%2 == 1
		if got := h.values[i].(signal.BitValue).B == signal.B1; got != want {
			t.Fatalf("delivery %d carried value %v", i, h.values[i])
		}
	}
}

// TestArenaRecyclesTokens: after delivery releases a token to the free
// list, the next acquire must hand the same storage back out — the
// free-list recycling that makes steady state allocation-free.
func TestArenaRecyclesTokens(t *testing.T) {
	s := NewScheduler()
	ctx := s.NewContext()
	tok := ctx.AcquireSignal(1, &recordingHandler{}, 0, signal.BitValue{}, "a")
	s.arena.release(tok)
	if got := ctx.AcquireSignal(2, &recordingHandler{}, 1, signal.BitValue{}, "b"); got != tok {
		t.Error("released token not reused by the next acquire")
	}
}

// TestArenaReleaseZeroes: a released token must carry nothing of its
// previous life except arena ownership.
func TestArenaReleaseZeroes(t *testing.T) {
	s := NewScheduler()
	ctx := s.NewContext()
	tok := ctx.AcquireSignal(9, &recordingHandler{}, 7, signal.BitValue{B: signal.B1}, "ghost")
	s.arena.release(tok)
	if tok.T != 0 || tok.Dst != nil || tok.Port != 0 || tok.Value != nil || tok.Src != "" {
		t.Errorf("released token retains state: %+v", tok)
	}
	if !tok.arenaOwned {
		t.Error("released token lost arena ownership")
	}
}

// TestArenaReserveCoversRun: a reservation sized to the run must let the
// whole run proceed without growing a new slab mid-flight.
func TestArenaReserveCoversRun(t *testing.T) {
	s := NewScheduler()
	s.ReserveTokens(8)
	ctx := s.NewContext()
	if got := len(s.arena.slab) - s.arena.next; got < 8 {
		t.Fatalf("reserve left capacity %d, want >= 8", got)
	}
	slabBefore := &s.arena.slab[0]
	// Bounded live set of 4, cycled 25 times: the slab must never grow.
	h := &recordingHandler{}
	for round := 0; round < 25; round++ {
		for i := 0; i < 4; i++ {
			ctx.Post(ctx.AcquireSignal(Time(round+1), h, i, signal.BitValue{}, "x"))
		}
		if err := s.Run(ctx, RunOptions{MaxInstants: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if &s.arena.slab[0] != slabBefore {
		t.Error("arena grew a new slab despite a covering reservation")
	}
}

// TestArenaCrossSchedulerRelease: a token acquired from scheduler A but
// delivered by scheduler B must be released into B's arena — ownership
// follows delivery, which is what keeps shard-migrated tokens race-free.
func TestArenaCrossSchedulerRelease(t *testing.T) {
	a, b := NewScheduler(), NewScheduler()
	ctxA, ctxB := a.NewContext(), b.NewContext()
	tok := ctxA.AcquireSignal(1, &recordingHandler{}, 0, signal.BitValue{}, "migrant")
	b.AdvanceTo(1)
	b.Deliver(ctxB, tok)
	if len(b.arena.free) != 1 || b.arena.free[0] != tok {
		t.Error("migrated token not released into the delivering scheduler's arena")
	}
	if len(a.arena.free) != 0 {
		t.Error("origin arena received the migrated token")
	}
}

// TestHandBuiltTokenNotArenaReleased: plain &SignalToken{} values must
// survive delivery untouched even on a scheduler with an active arena.
func TestHandBuiltTokenNotArenaReleased(t *testing.T) {
	h := &recordingHandler{}
	s := NewScheduler()
	s.ReserveTokens(4)
	tok := &SignalToken{T: 5, Dst: h, Port: 3, Value: signal.BitValue{B: signal.B1}, Src: "keep"}
	s.Post(tok)
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if tok.T != 5 || tok.Port != 3 || tok.Src != "keep" {
		t.Errorf("hand-built token mutated after delivery: %+v", tok)
	}
	if len(s.arena.free) != 0 {
		t.Error("hand-built token leaked into the arena free list")
	}
}

// chainHandler re-posts a fresh arena token to itself n times — the
// steady-state delivery loop of a settling netlist.
type chainHandler struct {
	left int
}

func (*chainHandler) HandlerName() string { return "chain" }
func (h *chainHandler) HandleToken(ctx *Context, tok Token) {
	if h.left == 0 {
		return
	}
	h.left--
	ctx.Post(ctx.AcquireSignal(ctx.Now()+1, h, 0, tok.(*SignalToken).Value, "chain"))
}

// TestArenaSteadyStateZeroAlloc: once the arena is warm, a full
// acquire → post → deliver → release cycle allocates nothing.
func TestArenaSteadyStateZeroAlloc(t *testing.T) {
	s := NewScheduler()
	s.ReserveTokens(16)
	ctx := s.NewContext()
	h := &chainHandler{}
	// Warm-up: grow the scratch buffer and the queue once.
	h.left = 8
	ctx.Post(ctx.AcquireSignal(1, h, 0, signal.BitValue{}, "seed"))
	if err := s.Run(ctx, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		h.left = 8
		ctx.Post(ctx.AcquireSignal(s.Now()+1, h, 0, signal.BitValue{}, "seed"))
		if err := s.Run(ctx, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state delivery allocates %.1f per run, want 0", allocs)
	}
}

// BenchmarkArenaTokenDelivery measures the steady-state delivery cycle
// under the slab arena; the companion pooled benchmark covers the legacy
// global pool. Run with -benchmem: the arena row must report 0 allocs/op.
func BenchmarkArenaTokenDelivery(b *testing.B) {
	s := NewScheduler()
	s.ReserveTokens(16)
	ctx := s.NewContext()
	h := &chainHandler{}
	h.left = 8
	ctx.Post(ctx.AcquireSignal(1, h, 0, signal.BitValue{}, "seed"))
	if err := s.Run(ctx, RunOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.left = 8
		ctx.Post(ctx.AcquireSignal(s.Now()+1, h, 0, signal.BitValue{}, "seed"))
		if err := s.Run(ctx, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPooledTokenDelivery is the legacy global-pool baseline for
// the arena benchmark above.
func BenchmarkPooledTokenDelivery(b *testing.B) {
	s := NewScheduler()
	ctx := s.NewContext()
	h := &recordingHandler{}
	s.Post(AcquireSignalToken(1, h, 0, signal.BitValue{}, "seed"))
	if err := s.Run(ctx, RunOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.ports = h.ports[:0]
		h.values = h.values[:0]
		s.Post(AcquireSignalToken(s.Now()+1, h, 0, signal.BitValue{}, "seed"))
		if err := s.Run(ctx, RunOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
