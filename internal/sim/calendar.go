package sim

import (
	"fmt"
	"math/bits"
	"sort"

	"repro/internal/signal"
)

// The scheduler's pending-event store is a bucketed calendar queue with
// struct-of-arrays signal lanes (DESIGN.md §14). Signal tokens — the
// dominant event class by two orders of magnitude — scheduled inside the
// near-future window [now, now+sigWindow) are decomposed into flat
// parallel lanes (sequence stamps, destination handler indices, ports,
// values, sources) held by the bucket of their time instant, so the hot
// post → pop cycle touches no interface header and no heap-sift pointer
// chase. Everything else — generic tokens (Self/Estimation/Control) and
// signal tokens beyond the window — goes to the spill lane, the binary
// min-heap the kernel always had. Delivery order is the exact (time,
// seq) total order of the heap-only kernel: buckets index distinct
// instants, lane appends are sequence-ascending (with a lazy sort for
// the one caller that can violate it, PostSequenced), and a pop at time
// t merges the t-bucket head against the spill head by stamp.

// sigBuckets is the calendar size: one bucket per simulation instant in
// the near-future window. A power of two so the bucket index is a mask,
// and 64 so bucket occupancy fits one machine word — NextEventTime is a
// rotate plus a trailing-zero count.
const sigBuckets = 64

// sigWindow is the calendar's reach: signal tokens scheduled at
// now+sigWindow or later spill to the heap. Since the window is exactly
// sigBuckets instants long, two distinct in-window times can never
// share a bucket.
const sigWindow = Time(sigBuckets)

// sigBucket holds every in-window signal token of ONE simulation
// instant in struct-of-arrays form. Lanes are parallel: entry i of each
// slice describes the same token. The lanes are kept at full length
// (len == cap) and occupancy lives in the n counter, so a post updates
// one integer instead of five slice headers. head is the next
// undelivered entry; entries before head are consumed and zeroed.
type sigBucket struct {
	time     Time
	head     int
	n        int  // used entries; [head, n) are undelivered
	unsorted bool // a PostSequenced stamp broke ascending order

	seqs  []uint64
	dsts  []uint32 // interned handler indices (Scheduler.interned)
	ports []int
	vals  []signal.Value
	srcs  []string
}

// sort.Interface over the undelivered tail [head:n], co-swapping all
// lanes: the lazy reorder that repairs arbitrary PostSequenced stamps.
func (b *sigBucket) Len() int { return b.n - b.head }
func (b *sigBucket) Less(i, j int) bool {
	return b.seqs[b.head+i] < b.seqs[b.head+j]
}
func (b *sigBucket) Swap(i, j int) {
	i, j = b.head+i, b.head+j
	b.seqs[i], b.seqs[j] = b.seqs[j], b.seqs[i]
	b.dsts[i], b.dsts[j] = b.dsts[j], b.dsts[i]
	b.ports[i], b.ports[j] = b.ports[j], b.ports[i]
	b.vals[i], b.vals[j] = b.vals[j], b.vals[i]
	b.srcs[i], b.srcs[j] = b.srcs[j], b.srcs[i]
}

// sortBucket restores ascending stamp order on the undelivered tail.
// Outlined and kept out of the inliner: it runs only after an
// out-of-order PostSequenced, never on the steady-state drain path.
//
//go:noinline
func sortBucket(b *sigBucket) {
	sort.Sort(b)
	b.unsorted = false
}

// reset returns an emptied bucket to its zero occupancy. Lane backing
// arrays are retained for reuse; consumed entries were already zeroed
// entry-by-entry at pop, so nothing is pinned.
func (b *sigBucket) reset() {
	b.head = 0
	b.n = 0
	b.unsorted = false
}

// bucketFor returns the calendar bucket addressing time t. Valid only
// for t in [now, now+sigWindow); the caller checks the window.
//
//gocad:noalloc
func (s *Scheduler) bucketFor(t Time) *sigBucket {
	return &s.sig[int(t&(sigBuckets-1))]
}

// internHandler maps a destination handler to its dense index in
// s.interned, so signal lanes store a 4-byte index instead of a 16-byte
// interface header. The one-entry cache makes the common run of posts
// to one module a pointer compare; the map behind it is bounded by the
// design's handler count.
//
//gocad:noalloc
func (s *Scheduler) internHandler(h Handler) uint32 {
	if h == s.internLastH {
		return s.internLastIdx
	}
	if idx, ok := s.internIdx[h]; ok {
		s.internLastH, s.internLastIdx = h, idx
		return idx
	}
	return s.internMiss(h)
}

// internMiss registers a handler first seen by this scheduler. Outlined
// so the map/slice growth stays off internHandler's steady-state path.
//
//go:noinline
func (s *Scheduler) internMiss(h Handler) uint32 {
	if s.internIdx == nil {
		s.internIdx = make(map[Handler]uint32)
	}
	idx := uint32(len(s.interned))
	s.interned = append(s.interned, h)
	s.internIdx[h] = idx
	s.internLastH, s.internLastIdx = h, idx
	return idx
}

// enqueue routes one sequenced token into the event store: in-window
// signal tokens are decomposed into the calendar's lanes (and their
// carrier released — posting transfers ownership, and the lanes now
// hold the payload), everything else spills to the heap. Both paths
// update the pending count and its high-water mark, so Pending and
// MaxQueueLen mean "tokens waiting, summed across lanes" exactly as
// they meant "heap length" before.
//
//gocad:noalloc
func (s *Scheduler) enqueue(tok Token, seq uint64) {
	if st, ok := tok.(*SignalToken); ok && st.T < s.now+sigWindow {
		b := s.bucketFor(st.T)
		n := b.n
		if n == b.head {
			// First token of this instant claims the bucket. Emptied
			// buckets are reset at pop, so a claimable bucket is always
			// already clean — only the time stamp and mask bit are set.
			b.time = st.T
			s.sigMask |= 1 << uint(st.T&(sigBuckets-1))
		} else {
			if b.time != st.T {
				bucketCollisionPanic(b.time, st.T)
			}
			if seq < b.seqs[n-1] {
				b.unsorted = true
			}
		}
		// One length check covers all five lanes: they are sized in
		// lockstep, so equal length is a bucket invariant.
		if n == len(b.seqs) {
			s.growBucketLanes(b)
		}
		b.seqs[n] = seq
		b.dsts[n] = s.internHandler(st.Dst)
		b.ports[n] = st.Port
		b.vals[n] = st.Value
		b.srcs[n] = st.Src
		b.n = n + 1
		// Ownership transferred: recycle the carrier now, instead of
		// after delivery — the lanes carry the payload from here on.
		if st.arenaOwned {
			s.arena.release(st)
		} else if st.pooled {
			st.recycle()
		}
	} else {
		s.spill.push(scheduledToken{tok: tok, seq: seq})
	}
	s.pending++
	if s.pending > s.maxQueue {
		s.maxQueue = s.pending
	}
}

// laneSlab is the bump allocator behind first-touch bucket lanes: five
// shared backing arrays carved into per-bucket views, so a scheduler
// that never called ReserveTokens pays five allocations for its whole
// calendar instead of five per bucket. off is the carve cursor, shared
// by all five arrays (they advance in lockstep).
type laneSlab struct {
	seqs  []uint64
	dsts  []uint32
	ports []int
	vals  []signal.Value
	srcs  []string
	off   int
}

// laneQuantum is the initial lane capacity a first-touched bucket gets
// from the slab; laneSlabBuckets is how many first touches one slab
// refill serves. 16 keeps a refill at ~6KB — runs that visit only a few
// instants stay cheap, and a full window pass costs four refills.
const (
	laneQuantum     = 8
	laneSlabBuckets = 16
)

// growBucketLanes gives a bucket more lane capacity: first touch carves
// laneQuantum entries from the scheduler's shared slab (refilled with
// one allocation per lane when exhausted), occupied buckets grow every
// lane in lockstep, keeping them at full length. Outlined so the
// allocation stays off enqueue's //gocad:noalloc steady-state path —
// once the active instants' buckets are sized this is a cold fallback.
//
//go:noinline
func (s *Scheduler) growBucketLanes(b *sigBucket) {
	if len(b.seqs) == 0 {
		if s.slab.off == len(s.slab.seqs) {
			n := laneSlabBuckets * laneQuantum
			s.slab = laneSlab{
				seqs:  make([]uint64, n),
				dsts:  make([]uint32, n),
				ports: make([]int, n),
				vals:  make([]signal.Value, n),
				srcs:  make([]string, n),
			}
		}
		// Full slice expressions cap each view so a later doubling can
		// never bleed into a neighboring bucket's lanes.
		lo, hi := s.slab.off, s.slab.off+laneQuantum
		b.seqs = s.slab.seqs[lo:hi:hi]
		b.dsts = s.slab.dsts[lo:hi:hi]
		b.ports = s.slab.ports[lo:hi:hi]
		b.vals = s.slab.vals[lo:hi:hi]
		b.srcs = s.slab.srcs[lo:hi:hi]
		s.slab.off = hi
		return
	}
	// Quadruple rather than double: event counts concentrate in the few
	// buckets of the active instants (circuit delays are small), so deep
	// buckets are the norm in gate-dense designs and each growth step
	// costs five allocations. 4× reaches depth in half the steps for a
	// worst-case 4× overshoot on short-lived lane memory.
	c := 4 * len(b.seqs)
	seqs := make([]uint64, c)
	copy(seqs, b.seqs)
	b.seqs = seqs
	dsts := make([]uint32, c)
	copy(dsts, b.dsts)
	b.dsts = dsts
	ports := make([]int, c)
	copy(ports, b.ports)
	b.ports = ports
	vals := make([]signal.Value, c)
	copy(vals, b.vals)
	b.vals = vals
	srcs := make([]string, c)
	copy(srcs, b.srcs)
	b.srcs = srcs
}

// bucketCollisionPanic reports a violated calendar invariant: two
// distinct times mapped to one bucket, which the window arithmetic
// makes impossible unless the clock ran past pending events.
//
//go:noinline
func bucketCollisionPanic(have, want Time) {
	panic(fmt.Sprintf("sim: calendar bucket holds time %d, cannot accept time %d", have, want))
}

// sigMinTime returns the earliest calendar instant, ok=false when every
// bucket is empty. All occupied buckets hold times in [now, now+64), so
// rotating the occupancy word by now's bucket index turns "earliest
// time" into "lowest set bit".
//
//gocad:noalloc
func (s *Scheduler) sigMinTime() (Time, bool) {
	if s.sigMask == 0 {
		return 0, false
	}
	rot := bits.RotateLeft64(s.sigMask, -int(s.now&(sigBuckets-1)))
	return s.now + Time(bits.TrailingZeros64(rot)), true
}

// popBucket consumes the bucket's head entry, materializing it into the
// scheduler's scratch SignalToken (the delivery loop owns it only until
// the handler returns, exactly the pooled-token contract). The consumed
// lane entries are zeroed so they pin neither values nor source
// strings.
//
//gocad:noalloc
func (s *Scheduler) popBucket(b *sigBucket) (*SignalToken, uint64) {
	i := b.head
	seq := b.seqs[i]
	// Field-wise fill: popScratch's pooled/arenaOwned flags are false by
	// construction and nothing flips them, so the two bools (and their
	// padding) need no re-zeroing per pop.
	s.popScratch.T = b.time
	s.popScratch.Dst = s.interned[b.dsts[i]]
	s.popScratch.Port = b.ports[i]
	s.popScratch.Value = b.vals[i]
	s.popScratch.Src = b.srcs[i]
	b.vals[i] = nil
	b.srcs[i] = ""
	b.head = i + 1
	if b.head == b.n {
		b.reset()
		s.sigMask &^= 1 << uint(b.time&(sigBuckets-1))
	}
	s.pending--
	return &s.popScratch, seq
}
