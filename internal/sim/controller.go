package sim

// Stats summarizes one completed simulation run.
type Stats struct {
	Scheduler SchedulerID
	EndTime   Time
	Delivered uint64
	MaxQueue  int
	Err       error
}

// Controller launches and coordinates schedulers over a fixed set of
// handlers (the design's modules). One controller can run a single
// simulation, or many concurrent simulations of the same design — each on
// its own scheduler and goroutine, each with its own setup — without any
// interference, because module state is keyed by scheduler ID.
type Controller struct {
	handlers []Handler
	// Seed populates a fresh scheduler with initial stimuli before the
	// run starts (primary-input tokens, first clock edges, ...). It runs
	// after module ResetState hooks.
	Seed func(ctx *Context)
	// Options bound every run started by this controller.
	Options RunOptions
	// EventLimit, when nonzero, overrides DefaultEventLimit per run.
	EventLimit uint64
}

// NewController returns a controller over the given handlers.
func NewController(handlers ...Handler) *Controller {
	return &Controller{handlers: handlers}
}

// Handlers returns the handler set the controller resets before each run.
func (c *Controller) Handlers() []Handler { return c.handlers }

// AddHandlers appends more handlers (e.g. after elaborating a hierarchy).
func (c *Controller) AddHandlers(hs ...Handler) { c.handlers = append(c.handlers, hs...) }

// Start runs one simulation to completion on a fresh scheduler and
// returns its statistics. setup is attached to the run's context and
// travels with every token delivery (nil for estimation-free runs);
// configure, if non-nil, may register instant hooks or overrides on the
// scheduler before the run starts.
func (c *Controller) Start(setup any, configure func(*Scheduler)) Stats {
	sched := NewScheduler()
	sched.EventLimit = c.EventLimit
	// Size the token arena from the design: at one instant every handler
	// can drive a few ports, so a small multiple of the handler count
	// covers the live-token high-water mark of typical netlists.
	sched.ReserveTokens(4 * len(c.handlers))
	if configure != nil {
		configure(sched)
	}
	ctx := sched.NewContext()
	ctx.Setup = setup
	sched.Reset(ctx, c.handlers)
	if c.Seed != nil {
		c.Seed(ctx)
	}
	err := sched.Run(ctx, c.Options)
	st := Stats{
		Scheduler: sched.ID(),
		EndTime:   sched.Now(),
		Delivered: sched.Delivered(),
		MaxQueue:  sched.MaxQueueLen(),
		Err:       err,
	}
	c.release(sched.ID())
	return st
}

// StartConcurrent launches n independent simulations of the same design,
// one goroutine and one scheduler each, and waits for all of them. setups
// supplies the per-run setup (may return nil); configure may adjust each
// scheduler. The kernel guarantees the runs cannot interfere.
func (c *Controller) StartConcurrent(n int, setups func(i int) any, configure func(i int, s *Scheduler)) []Stats {
	return c.StartPool(Pool{Workers: n}, n, setups, configure)
}

// StartPool is StartConcurrent with a bounded worker pool: the n runs are
// executed on at most pool.Size() goroutines, and the returned Stats
// slice is ordered by run index regardless of how the pool interleaved
// the runs. This is the primitive every fan-out site in the system builds
// on (injection runs, scenario grids, parameter sweeps).
func (c *Controller) StartPool(pool Pool, n int, setups func(i int) any, configure func(i int, s *Scheduler)) []Stats {
	stats := make([]Stats, n)
	pool.For(n, func(i int) error {
		var setup any
		if setups != nil {
			setup = setups(i)
		}
		var cfg func(*Scheduler)
		if configure != nil {
			cfg = func(s *Scheduler) { configure(i, s) }
		}
		stats[i] = c.Start(setup, cfg)
		return nil
	})
	return stats
}

// StateHolder is implemented by handlers that keep per-scheduler state
// tables and can release a scheduler's entry after its run completes.
type StateHolder interface {
	ReleaseState(id SchedulerID)
}

// release frees per-scheduler state on every handler that supports it.
func (c *Controller) release(id SchedulerID) {
	for _, h := range c.handlers {
		if sh, ok := h.(StateHolder); ok {
			sh.ReleaseState(id)
		}
	}
}
