package sim

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestControllerStartRunsSeedAndReset(t *testing.T) {
	r := &recorder{name: "r"}
	c := NewController(r)
	c.Seed = func(ctx *Context) {
		ctx.Post(&SelfToken{T: 1, Dst: r})
	}
	st := c.Start(nil, nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	if r.resetRan != 1 {
		t.Errorf("ResetState ran %d times, want 1", r.resetRan)
	}
	if st.Delivered != 1 || r.count() != 1 {
		t.Errorf("delivered = %d, recorder = %d; want 1, 1", st.Delivered, r.count())
	}
	if st.EndTime != 1 {
		t.Errorf("end time = %d, want 1", st.EndTime)
	}
}

func TestControllerSetupTravelsWithContext(t *testing.T) {
	type mySetup struct{ tag string }
	var seen any
	r := &recorder{name: "r"}
	r.onToken = func(ctx *Context, tok Token) { seen = ctx.Setup }
	c := NewController(r)
	c.Seed = func(ctx *Context) { ctx.Post(&SelfToken{T: 1, Dst: r}) }
	c.Start(&mySetup{tag: "s1"}, nil)
	got, ok := seen.(*mySetup)
	if !ok || got.tag != "s1" {
		t.Errorf("setup in context = %#v", seen)
	}
}

// counterModule keeps per-scheduler counters in a StateTable, to verify
// scheduler isolation under concurrency.
type counterModule struct {
	name  string
	state StateTable
	limit Time
}

type counterState struct{ n int }

func (m *counterModule) HandlerName() string { return m.name }

func (m *counterModule) HandleToken(ctx *Context, tok Token) {
	st := m.state.GetOrCreate(ctx.SchedulerID(), func() any { return &counterState{} }).(*counterState)
	st.n++
	if ctx.Now() < m.limit {
		ctx.Post(&SelfToken{T: ctx.Now() + 1, Dst: m})
	}
}

func (m *counterModule) countFor(id SchedulerID) int {
	v, ok := m.state.Get(id)
	if !ok {
		return -1
	}
	return v.(*counterState).n
}

func TestControllerConcurrentSchedulersDoNotInterfere(t *testing.T) {
	m := &counterModule{name: "m", limit: 1000}
	c := NewController(m)
	c.Seed = func(ctx *Context) { ctx.Post(&SelfToken{T: 1, Dst: m}) }

	const runs = 8
	var mu sync.Mutex
	counts := make(map[SchedulerID]uint64)
	stats := c.StartConcurrent(runs, nil, func(i int, s *Scheduler) {
		mu.Lock()
		counts[s.ID()] = 0
		mu.Unlock()
	})
	for _, st := range stats {
		if st.Err != nil {
			t.Fatal(st.Err)
		}
		if st.Delivered != 1000 {
			t.Errorf("scheduler %d delivered %d tokens, want 1000", st.Scheduler, st.Delivered)
		}
	}
	// State must have been released after each run.
	if m.state.Len() != 0 {
		t.Errorf("state table holds %d entries after release, want 0", m.state.Len())
	}
}

func (m *counterModule) ReleaseState(id SchedulerID) { m.state.Delete(id) }

func TestStateTableBasics(t *testing.T) {
	var st StateTable
	if _, ok := st.Get(1); ok {
		t.Error("empty table reported a value")
	}
	created := 0
	v := st.GetOrCreate(1, func() any { created++; return "a" })
	if v != "a" || created != 1 {
		t.Error("GetOrCreate first call wrong")
	}
	v = st.GetOrCreate(1, func() any { created++; return "b" })
	if v != "a" || created != 1 {
		t.Error("GetOrCreate must not re-create")
	}
	st.Set(2, "c")
	if got, _ := st.Get(2); got != "c" {
		t.Error("Set/Get wrong")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d, want 2", st.Len())
	}
	st.Delete(1)
	if _, ok := st.Get(1); ok {
		t.Error("Delete did not remove entry")
	}
}

func TestStateTableConcurrentAccess(t *testing.T) {
	var st StateTable
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := SchedulerID(i % 4)
			for j := 0; j < 100; j++ {
				st.GetOrCreate(id, func() any { return new(int) })
				st.Get(id)
			}
		}(i)
	}
	wg.Wait()
	if st.Len() != 4 {
		t.Errorf("Len = %d, want 4", st.Len())
	}
}

func TestControllerStartConcurrentSetups(t *testing.T) {
	// Each run gets its own setup; the module checks it sees the right one.
	type setup struct{ idx int }
	var mu sync.Mutex
	seen := make(map[int]int) // setup idx -> deliveries
	r := &recorder{name: "r"}
	r.onToken = func(ctx *Context, tok Token) {
		s := ctx.Setup.(*setup)
		mu.Lock()
		seen[s.idx]++
		mu.Unlock()
	}
	c := NewController(r)
	c.Seed = func(ctx *Context) {
		ctx.Post(&SelfToken{T: 1, Dst: r})
		ctx.Post(&SelfToken{T: 2, Dst: r})
	}
	c.StartConcurrent(4, func(i int) any { return &setup{idx: i} }, nil)
	for i := 0; i < 4; i++ {
		if seen[i] != 2 {
			t.Errorf("setup %d saw %d deliveries, want 2", i, seen[i])
		}
	}
}

func TestSchedulerDeterminismProperty(t *testing.T) {
	// Two runs over the same stimulus must produce identical delivery
	// traces — determinism is what makes fault injection comparable to
	// the golden run.
	f := func(times []uint8) bool {
		if len(times) == 0 {
			return true
		}
		trace := func() []Time {
			s := NewScheduler()
			r := &recorder{name: "r"}
			for _, tm := range times {
				s.Post(&SelfToken{T: Time(tm%16) + 1, Dst: r})
			}
			if err := s.Run(nil, RunOptions{}); err != nil {
				return nil
			}
			return r.times
		}
		a, b := trace(), trace()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
