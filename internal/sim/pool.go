package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is the kernel's bounded parallel-execution layer. The paper's
// scheduler-confinement design (per-scheduler state LUTs, tokens joined
// to the scheduler that delivered them) makes independent simulations of
// one design trivially parallel: a Pool turns that property into wall
// clock, fanning a batch of independent work items over a bounded set of
// worker goroutines while keeping results deterministic — every item is
// identified by its index, workers write only to their own item's slot,
// and callers merge in index order.
//
// The zero value is ready to use and runs with one worker per available
// CPU.
type Pool struct {
	// Workers bounds the number of concurrent goroutines:
	// 0 uses runtime.GOMAXPROCS(0) (the default), 1 runs the batch
	// serially on the calling goroutine (the legacy path, bit-identical
	// by construction), and any other value is taken literally.
	Workers int
}

// Size returns the resolved worker count (always ≥ 1).
func (p Pool) Size() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// For runs fn(i) for every i in [0, n) on up to Size() workers and waits
// for all of them. Items are claimed from an atomic cursor, so the
// assignment of items to workers is nondeterministic — fn must write its
// result into a slot owned by index i (never append to a shared slice),
// which keeps the merged outcome independent of scheduling.
//
// Error semantics are deterministic too: if any items fail, the error of
// the LOWEST failing index is returned — the same error a serial loop
// stopping at the first failure would surface. Unlike the serial loop,
// the parallel path runs every item; callers must discard results on
// error rather than assume later items never ran.
func (p Pool) For(n int, fn func(i int) error) error {
	return p.ForWorker(n, func(_, i int) error { return fn(i) })
}

// ForWorker is For with the claiming worker's identity (in [0, Size()))
// passed alongside the item index, so callers can maintain per-worker
// scratch state — e.g. one non-concurrency-safe netlist evaluator per
// worker — without locking.
func (p Pool) ForWorker(n int, fn func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Size()
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
