package sim

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/leakcheck"
)

func TestPoolSize(t *testing.T) {
	if got := (Pool{}).Size(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("default size = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := (Pool{Workers: 3}).Size(); got != 3 {
		t.Errorf("size = %d, want 3", got)
	}
}

func TestPoolForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		seen := make([]atomic.Int32, 100)
		err := Pool{Workers: workers}.For(100, func(i int) error {
			seen[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range seen {
			if n := seen[i].Load(); n != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestPoolForZeroItems(t *testing.T) {
	called := false
	if err := (Pool{Workers: 4}).For(0, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for empty range")
	}
}

// TestPoolForLowestErrorWins: the error reported must be the one of the
// lowest failing index, matching what a serial loop would have returned
// first — this keeps error behavior identical across worker counts.
func TestPoolForLowestErrorWins(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for _, workers := range []int{1, 8} {
		err := Pool{Workers: workers}.For(50, func(i int) error {
			switch i {
			case 7:
				return errLow
			case 31:
				return errHigh
			}
			return nil
		})
		if !errors.Is(err, errLow) {
			t.Errorf("workers=%d: err = %v, want %v", workers, err, errLow)
		}
	}
}

// TestPoolForWorkerIdentity: worker indices must stay within [0, size) and
// each index must be owned by exactly one goroutine at a time, so callers
// can hand each worker private scratch space (e.g. a gate evaluator).
func TestPoolForWorkerIdentity(t *testing.T) {
	const workers = 4
	busy := make([]atomic.Int32, workers)
	err := Pool{Workers: workers}.ForWorker(200, func(worker, i int) error {
		if worker < 0 || worker >= workers {
			t.Errorf("worker %d out of range", worker)
		}
		if busy[worker].Add(1) != 1 {
			t.Errorf("worker %d reentered concurrently", worker)
		}
		busy[worker].Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPoolSerialRunsInline: Workers=1 must run on the caller's goroutine
// in index order — the legacy serial semantics some callers rely on.
func TestPoolSerialRunsInline(t *testing.T) {
	var mu sync.Mutex
	var order []int
	err := Pool{Workers: 1}.For(10, func(i int) error {
		mu.Lock()
		order = append(order, i)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

// TestPoolSerialStopsAtFirstError: the serial path must not run items
// after a failure, exactly like the historical loops it replaces.
func TestPoolSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	ran := 0
	err := Pool{Workers: 1}.For(10, func(i int) error {
		ran++
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if ran != 4 {
		t.Errorf("ran = %d items, want 4", ran)
	}
}

// TestPoolBoundedConcurrency: no more than Workers goroutines may be in
// fn simultaneously.
func TestPoolBoundedConcurrency(t *testing.T) {
	leakcheck.Check(t) // every pool worker must exit with For
	const workers = 3
	var cur, peak atomic.Int32
	err := Pool{Workers: workers}.For(100, func(i int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d > %d workers", p, workers)
	}
}
