package sim

import (
	"testing"

	"repro/internal/signal"
)

// TestQueueAccountingAcrossLanes pins Pending and MaxQueueLen on a
// scripted post/pop sequence that spans both storage lanes: in-window
// signal tokens land in calendar buckets, far-future signal tokens and
// generic tokens land in the spill heap. The counters must reflect the
// SUM across lanes at every step — a regression to per-lane counting
// (the natural bug after the calendar split) shows up as an off-by-lane
// value on the first mixed step.
func TestQueueAccountingAcrossLanes(t *testing.T) {
	s := NewScheduler()
	ctx := s.NewContext()
	h := &fuzzNullHandler{}
	var v signal.Value = signal.BitValue{B: signal.B1}

	assertCounts := func(step string, pending, maxQ int) {
		t.Helper()
		if got := s.Pending(); got != pending {
			t.Fatalf("%s: Pending() = %d, want %d", step, got, pending)
		}
		if got := s.MaxQueueLen(); got != maxQ {
			t.Fatalf("%s: MaxQueueLen() = %d, want %d", step, got, maxQ)
		}
	}

	assertCounts("empty", 0, 0)

	// Three in-window signal tokens (calendar lane): two share t=3, one
	// at t=5.
	s.Post(&SignalToken{T: 3, Dst: h, Port: 0, Value: v, Src: "a"})
	s.Post(&SignalToken{T: 3, Dst: h, Port: 1, Value: v, Src: "b"})
	s.Post(&SignalToken{T: 5, Dst: h, Port: 2, Value: v, Src: "c"})
	assertCounts("3 bucketed posts", 3, 3)

	// A far-future signal token (beyond the calendar window) and two
	// generic tokens: all three take the spill lane.
	s.Post(&SignalToken{T: Time(sigBuckets) + 10, Dst: h, Port: 3, Value: v, Src: "d"})
	s.Post(&SelfToken{T: 4, Dst: h, Payload: 0})
	s.Post(&SelfToken{T: 6, Dst: h, Payload: 1})
	assertCounts("3 spill posts", 6, 6)

	// Drain t=3: two bucketed events leave; the high-water mark stays.
	s.AdvanceTo(3)
	for i := 0; i < 2; i++ {
		tok, _, ok := s.PopDue(3)
		if !ok {
			t.Fatalf("PopDue(3) #%d returned nothing", i)
		}
		s.Deliver(ctx, tok)
	}
	assertCounts("after draining t=3", 4, 6)

	// Drain t=4 (spill lane) — Pending must drop across lanes, not just
	// the bucketed one.
	s.AdvanceTo(4)
	if tok, _, ok := s.PopDue(4); !ok {
		t.Fatal("PopDue(4) returned nothing")
	} else {
		s.Deliver(ctx, tok)
	}
	assertCounts("after draining t=4", 3, 6)

	// Refill past the old high-water mark: mixed lanes again.
	s.Post(&SignalToken{T: 7, Dst: h, Port: 4, Value: v, Src: "e"})
	s.Post(&SelfToken{T: 8, Dst: h, Payload: 2})
	s.Post(&SignalToken{T: 9, Dst: h, Port: 5, Value: v, Src: "f"})
	s.Post(&SignalToken{T: 9, Dst: h, Port: 6, Value: v, Src: "g"})
	assertCounts("refilled past high water", 7, 7)

	// Run to completion: everything drains, the mark is preserved.
	if err := s.Run(ctx, RunOptions{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertCounts("after Run", 0, 7)
}
