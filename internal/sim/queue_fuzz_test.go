package sim

import (
	"container/heap"
	"testing"

	"repro/internal/signal"
)

// oracleItem is one pending event in the reference queue: the plain
// (time, seq) pair the two-lane store must order identically.
type oracleItem struct {
	t      Time
	seq    uint64
	id     int
	signal bool
}

// oracleQueue is the reference: a container/heap min-heap over
// (time, seq) — the exact total order the pre-calendar kernel's single
// binary heap delivered.
type oracleQueue []oracleItem

func (q oracleQueue) Len() int { return len(q) }
func (q oracleQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q oracleQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *oracleQueue) Push(x any)        { *q = append(*q, x.(oracleItem)) }
func (q *oracleQueue) Pop() any {
	old := *q
	n := len(old) - 1
	it := old[n]
	*q = old[:n]
	return it
}

// fuzzPopOne pops the earliest event from both the scheduler and the
// oracle and fails on any divergence in time, stamp, or event identity.
func fuzzPopOne(t *testing.T, s *Scheduler, oracle *oracleQueue) {
	t.Helper()
	nt, ok := s.NextEventTime()
	if !ok {
		t.Fatalf("scheduler empty with %d oracle events pending", oracle.Len())
	}
	want := heap.Pop(oracle).(oracleItem)
	if nt != want.t {
		t.Fatalf("NextEventTime = %d, oracle head at %d", nt, want.t)
	}
	s.AdvanceTo(nt)
	tok, seq, ok := s.PopDue(nt)
	if !ok {
		t.Fatalf("PopDue(%d) returned nothing, oracle head at %d", nt, want.t)
	}
	if seq != want.seq {
		t.Fatalf("popped seq %d at t=%d, oracle expects seq %d", seq, nt, want.seq)
	}
	switch tk := tok.(type) {
	case *SignalToken:
		if !want.signal {
			t.Fatalf("popped signal token (seq %d), oracle expects generic id %d", seq, want.id)
		}
		if tk.T != want.t || tk.Port != want.id {
			t.Fatalf("signal token (t=%d id=%d), oracle expects (t=%d id=%d)", tk.T, tk.Port, want.t, want.id)
		}
	case *SelfToken:
		if want.signal {
			t.Fatalf("popped generic token (seq %d), oracle expects signal id %d", seq, want.id)
		}
		if tk.T != want.t || tk.Payload.(int) != want.id {
			t.Fatalf("self token (t=%d id=%v), oracle expects (t=%d id=%d)", tk.T, tk.Payload, want.t, want.id)
		}
	default:
		t.Fatalf("unexpected token type %T", tok)
	}
}

// FuzzQueueOrdering differentially tests the calendar+spill event store
// against a container/heap oracle: random (time, seq) post/pop scripts
// must produce byte-identical pop order. Each 3-byte chunk is one op:
// c[0] selects token kind and whether to interleave a pop, c[1] the
// time offset (spanning the calendar window and the spill region), and
// c[2] the high bits of a PostSequenced stamp (low bits take the op
// index, keeping stamps unique while letting c[2] force out-of-order
// arrivals that exercise the bucket's lazy sort).
func FuzzQueueOrdering(f *testing.F) {
	f.Add([]byte{0, 0, 0})
	f.Add([]byte{1, 5, 200, 0, 5, 100, 2, 5, 150})
	f.Add([]byte{0, 63, 9, 1, 64, 8, 0, 95, 7, 128, 0, 6})
	f.Add([]byte{0, 1, 3, 0, 1, 2, 0, 1, 1, 0, 1, 0, 129, 0, 0, 128, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		s := NewScheduler()
		s.ReserveTokens(32)
		h := &fuzzNullHandler{}
		oracle := &oracleQueue{}
		var v signal.Value = signal.BitValue{B: signal.B1}
		for i := 0; i+2 < len(script); i += 3 {
			op, dt, hi := script[i], script[i+1], script[i+2]
			tt := s.Now() + Time(dt%96)
			seq := (uint64(hi) << 32) | uint64(i)
			isSignal := op&1 == 0
			if isSignal {
				s.PostSequenced(&SignalToken{T: tt, Dst: h, Port: i, Value: v, Src: "fuzz"}, seq)
			} else {
				s.PostSequenced(&SelfToken{T: tt, Dst: h, Payload: i}, seq)
			}
			heap.Push(oracle, oracleItem{t: tt, seq: seq, id: i, signal: isSignal})
			if s.Pending() != oracle.Len() {
				t.Fatalf("Pending() = %d after post, oracle holds %d", s.Pending(), oracle.Len())
			}
			// High bit interleaves a pop mid-script, advancing the clock
			// so buckets recycle under the posts that follow.
			if op&0x80 != 0 && oracle.Len() > 0 {
				fuzzPopOne(t, s, oracle)
			}
		}
		for oracle.Len() > 0 {
			fuzzPopOne(t, s, oracle)
		}
		if s.Pending() != 0 {
			t.Fatalf("scheduler still has %d pending after oracle drained", s.Pending())
		}
		if nt, ok := s.NextEventTime(); ok {
			t.Fatalf("NextEventTime reports %d on an empty store", nt)
		}
	})
}

type fuzzNullHandler struct{}

func (*fuzzNullHandler) HandlerName() string          { return "fuzz-null" }
func (*fuzzNullHandler) HandleToken(*Context, Token) {}
