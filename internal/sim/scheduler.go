package sim

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/signal"
)

// SchedulerID uniquely identifies a scheduler instance for the lifetime of
// the process. Modules use it to address their per-scheduler state tables,
// which is what lets many schedulers run over the same design without
// interference.
type SchedulerID uint64

var schedulerIDs atomic.Uint64

// ErrEventLimit is returned by a run when the configured event budget is
// exhausted — the guard against nonterminating designs (e.g. zero-delay
// combinational loops).
var ErrEventLimit = errors.New("sim: event limit exceeded")

// scheduledToken pairs a token with a sequence number so that tokens
// posted at the same instant are delivered in posting order, keeping runs
// deterministic.
type scheduledToken struct {
	tok Token
	seq uint64
}

// tokenQueue is a binary min-heap ordered by (time, seq), with inlined
// index-based sift operations — the event store's spill lane, carrying
// generic tokens and far-future signal tokens (calendar.go). The
// container/heap interface funnels every element through `any` on
// Push/Pop, which boxes the scheduledToken — one heap allocation per
// posted token; the direct sift-up/sift-down below keeps the element a
// plain struct.
type tokenQueue []scheduledToken

func (q tokenQueue) less(i, j int) bool {
	if q[i].tok.When() != q[j].tok.When() {
		return q[i].tok.When() < q[j].tok.When()
	}
	return q[i].seq < q[j].seq
}

// siftUp restores the heap property after appending at index i.
func (q tokenQueue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

// siftDown restores the heap property after replacing the root.
func (q tokenQueue) siftDown(i int) {
	n := len(q)
	for {
		kid := 2*i + 1
		if kid >= n {
			return
		}
		if right := kid + 1; right < n && q.less(right, kid) {
			kid = right
		}
		if !q.less(kid, i) {
			return
		}
		q[i], q[kid] = q[kid], q[i]
		i = kid
	}
}

// push inserts a scheduled token.
func (q *tokenQueue) push(it scheduledToken) {
	*q = append(*q, it)
	q.siftUp(len(*q) - 1)
}

// popMin removes and returns the earliest (time, seq) token.
func (q *tokenQueue) popMin() scheduledToken {
	old := *q
	it := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = scheduledToken{} // release the Token for GC
	next := old[:n]
	*q = next
	next.siftDown(0)
	return it
}

// InstantHook is invoked by the scheduler when a simulation time instant
// completes (all tokens at that time have been handled, and either the
// queue is empty or the next token is strictly later). This is the point
// where the estimation controller delivers estimation tokens to every
// module "at the end of each simulation time instant".
type InstantHook func(ctx *Context, completed Time)

// Scheduler owns one event store and delivers tokens in nondecreasing
// time order. A Scheduler is confined to a single goroutine; concurrency
// comes from running several Schedulers, never from sharing one.
//
// The store has two lanes (calendar.go): a 64-instant calendar of
// struct-of-arrays buckets for near-future signal tokens, and the spill
// min-heap for everything else. Both lanes order by the same (time, seq)
// key, so delivery order — and with it every fingerprint — is identical
// to the heap-only kernel's.
type Scheduler struct {
	id      SchedulerID
	seq     uint64
	now     Time
	started bool

	// sig is the calendar: bucket i holds the signal tokens of the unique
	// time t in [now, now+sigWindow) with t%64 == i, decomposed into flat
	// lanes. sigMask has bit i set iff bucket i is occupied.
	sig     [sigBuckets]sigBucket
	sigMask uint64

	// slab backs first-touch bucket lanes (growBucketLanes), amortizing
	// lane setup to five allocations per laneSlabBuckets first touches
	// instead of five per bucket.
	slab laneSlab

	// spill holds generic tokens (Self/Estimation/Control) and signal
	// tokens scheduled beyond the calendar window, ordered by (time, seq).
	spill tokenQueue

	// pending counts undelivered tokens across both lanes.
	pending int

	// interned assigns each destination handler a dense index so signal
	// lanes store 4-byte indices instead of interface headers. The
	// one-entry internLast cache keeps repeat posts off the map.
	interned      []Handler
	internIdx     map[Handler]uint32
	internLastH   Handler
	internLastIdx uint32

	// popScratch is the delivery carrier for calendar-stored signal
	// tokens: popBucket materializes lane entries into it, deliver hands
	// it to the handler, and the next pop overwrites it. It is neither
	// pooled nor arena-owned, so deliver's release path leaves it alone.
	popScratch SignalToken

	// overrides replaces the event handling of specific handlers for this
	// scheduler only. Virtual fault simulation uses this to make a faulty
	// module emit a fixed erroneous output pattern regardless of inputs.
	overrides map[Handler]Handler

	hooks []InstantHook

	// intercept, when non-nil, sees every token entering Post after the
	// causality check. Returning true consumes the token: it is neither
	// sequenced nor enqueued, and ownership passes to the intercept. A
	// sharding coordinator installs one to capture cross-scheduler posts
	// and re-inject them with globally assigned sequence stamps.
	intercept func(Token) bool

	// arena slab-allocates this scheduler's signal tokens
	// (Context.AcquireSignal); sized up front by ReserveTokens.
	arena tokenArena

	// Stats
	delivered uint64
	maxQueue  int

	// EventLimit bounds the number of delivered tokens per run;
	// 0 means the DefaultEventLimit.
	EventLimit uint64
}

// DefaultEventLimit is the per-run token budget used when a Scheduler's
// EventLimit is left at zero.
const DefaultEventLimit = 50_000_000

// NewScheduler returns an empty scheduler with a fresh unique identifier.
func NewScheduler() *Scheduler {
	return &Scheduler{
		id:        SchedulerID(schedulerIDs.Add(1)),
		overrides: make(map[Handler]Handler),
	}
}

// ID returns the scheduler's process-unique identifier.
func (s *Scheduler) ID() SchedulerID { return s.id }

// Now returns the current simulation time.
func (s *Scheduler) Now() Time { return s.now }

// Delivered returns the number of tokens delivered so far.
func (s *Scheduler) Delivered() uint64 { return s.delivered }

// MaxQueueLen returns the high-water mark of the pending-token queue.
func (s *Scheduler) MaxQueueLen() int { return s.maxQueue }

// Override replaces target's event handling with replacement for this
// scheduler only. Passing a nil replacement removes the override. Other
// schedulers running over the same design are unaffected — this is the
// property that lets virtual fault simulation inject faults on a fresh
// scheduler with no reset or save/restore of the fault-free one.
func (s *Scheduler) Override(target, replacement Handler) {
	if replacement == nil {
		delete(s.overrides, target)
		return
	}
	s.overrides[target] = replacement
}

// AddInstantHook registers a hook called at the completion of every
// simulation time instant.
func (s *Scheduler) AddInstantHook(h InstantHook) { s.hooks = append(s.hooks, h) }

// Post enqueues a token. Posting a token in the past (before the
// scheduler's current time) is a programming error and panics, because it
// would silently corrupt causality.
func (s *Scheduler) Post(tok Token) {
	if tok.When() < s.now {
		panic(fmt.Sprintf("sim: token scheduled at %d, before current time %d", tok.When(), s.now))
	}
	if s.intercept != nil && s.intercept(tok) {
		return
	}
	s.seq++
	s.enqueue(tok, s.seq)
}

// SetPostIntercept installs (or, with nil, removes) the scheduler's post
// intercept. While installed, every token passing the causality check is
// offered to fn before sequencing; fn returning true consumes it.
func (s *Scheduler) SetPostIntercept(fn func(Token) bool) { s.intercept = fn }

// PostSequenced enqueues a token under a caller-assigned sequence stamp,
// bypassing the scheduler's own counter and the post intercept. This is
// the injection half of the sharding protocol: a coordinator that merged
// captured posts from several schedulers re-posts each one here with its
// globally agreed (time, seq) rank, so same-instant delivery order is
// identical to the order one scheduler would have produced. Stamps must
// be unique per (time, seq) pair; the causality rule still applies.
func (s *Scheduler) PostSequenced(tok Token, seq uint64) {
	if tok.When() < s.now {
		panic(fmt.Sprintf("sim: token scheduled at %d, before current time %d", tok.When(), s.now))
	}
	s.enqueue(tok, seq)
}

// NextEventTime returns the time of the earliest pending token, or
// ok=false when the store is empty — the lower-bound timestamp a
// conservative synchronization window is computed from. The earliest
// time is the minimum of the calendar's occupancy scan and the spill
// heap's root.
//
//gocad:noalloc
func (s *Scheduler) NextEventTime() (Time, bool) {
	ct, cok := s.sigMinTime()
	if len(s.spill) == 0 {
		return ct, cok
	}
	ht := s.spill[0].tok.When()
	if !cok || ht < ct {
		return ht, true
	}
	return ct, true
}

// PopDue removes and returns the earliest pending token together with
// its sequence stamp, provided it is scheduled exactly at t; ok=false
// when the store is empty or the head is later. Combined with Deliver
// this is the bounded-step API: an external coordinator drains one
// instant of one scheduler without ceding control of global time.
//
// When both lanes hold tokens due at t, the lower sequence stamp wins —
// the merge that keeps two-lane delivery order identical to the single
// heap's (time, seq) order.
//
//gocad:noalloc
func (s *Scheduler) PopDue(t Time) (Token, uint64, bool) {
	b := s.bucketFor(t)
	bucketDue := b.head < b.n && b.time == t
	spillDue := len(s.spill) > 0 && s.spill[0].tok.When() == t
	if bucketDue {
		if b.unsorted {
			sortBucket(b)
		}
		if !spillDue || b.seqs[b.head] < s.spill[0].seq {
			tok, seq := s.popBucket(b)
			return tok, seq, true
		}
	}
	if !spillDue {
		return nil, 0, false
	}
	it := s.spill.popMin()
	s.pending--
	return it.tok, it.seq, true
}

// Deliver dispatches one token exactly as the run loop would: overrides
// and tracing are honoured, the delivered counter advances, and pooled
// signal tokens are recycled. ctx must belong to this scheduler (nil
// uses a fresh context).
func (s *Scheduler) Deliver(ctx *Context, tok Token) {
	if ctx == nil {
		ctx = s.NewContext()
	}
	s.deliver(ctx, tok)
}

// AdvanceTo moves the scheduler's clock to t without delivering
// anything. Coordinators call it before stepping an instant so that
// handlers observing ctx.Now() — and the causality check guarding Post —
// see the global time. Moving the clock backwards panics.
func (s *Scheduler) AdvanceTo(t Time) {
	if s.started && t < s.now {
		panic(fmt.Sprintf("sim: AdvanceTo(%d) behind current time %d", t, s.now))
	}
	s.started = true
	s.now = t
}

// Pending returns the number of tokens waiting across both lanes of the
// event store (calendar buckets plus the spill heap).
func (s *Scheduler) Pending() int { return s.pending }

// Context gives a handler controlled access to the scheduler that is
// delivering a token to it. A module can schedule a new token only when
// it receives one — i.e. only through the Context — and the new token is
// automatically joined to the same scheduler. This is the kernel's
// no-interference guarantee.
type Context struct {
	sched *Scheduler
	// Setup is the estimation setup active for this run (an *estim.Setup),
	// carried with every delivery so modules can retrieve the estimators
	// selected for them at runtime. It may be nil for setup-free runs.
	Setup any
	// Trace, when non-nil, receives one line per delivered token.
	Trace func(string)
}

// SchedulerID returns the identifier modules key their state tables by.
func (c *Context) SchedulerID() SchedulerID { return c.sched.id }

// Now returns the current simulation time.
func (c *Context) Now() Time { return c.sched.now }

// Post schedules a follow-up token on the same scheduler.
func (c *Context) Post(tok Token) { c.sched.Post(tok) }

// PostSignal is a convenience wrapper building and posting a SignalToken.
func (c *Context) PostSignal(t *SignalToken) { c.sched.Post(t) }

// AcquireSignal returns a SignalToken from the scheduler's slab arena —
// the zero-allocation steady-state replacement for AcquireSignalToken.
// The same two rules bind its users: the receiving handler must not
// retain the token past HandleToken (the delivering scheduler releases
// it back to its arena), and the poster must not re-post a token it has
// already posted.
//
//gocad:noalloc
func (c *Context) AcquireSignal(t Time, dst Handler, port int, v signal.Value, src string) *SignalToken {
	tok := c.sched.arena.acquire()
	tok.T, tok.Dst, tok.Port, tok.Value, tok.Src = t, dst, port, v, src
	return tok
}

// Scheduler exposes the underlying scheduler, for controllers that need
// override management during a run (fault injection).
func (c *Context) Scheduler() *Scheduler { return c.sched }

// deliver dispatches one token, honouring per-scheduler overrides.
func (s *Scheduler) deliver(ctx *Context, tok Token) {
	s.delivered++
	dst := tok.Target()
	if len(s.overrides) != 0 {
		if repl, ok := s.overrides[dst]; ok {
			dst = repl
		}
	}
	if ctx.Trace != nil {
		if str, ok := tok.(fmt.Stringer); ok {
			ctx.Trace(str.String())
		} else {
			ctx.Trace(fmt.Sprintf("token@%d -> %s", tok.When(), dst.HandlerName()))
		}
	}
	dst.HandleToken(ctx, tok)
	if st, ok := tok.(*SignalToken); ok {
		if st.arenaOwned {
			// Release into the DELIVERING scheduler's arena: for tokens
			// that migrated across a shard boundary, ownership moves with
			// them, keeping every arena single-writer.
			s.arena.release(st)
		} else if st.pooled {
			st.recycle()
		}
	}
}

// deliverScratch is deliver specialized for the calendar's materialized
// carrier: popBucket has just filled s.popScratch, so the destination
// is already in hand (no Target call) and no release applies (the
// scratch token is neither pooled nor arena-owned).
//
//gocad:noalloc
func (s *Scheduler) deliverScratch(ctx *Context) {
	s.delivered++
	dst := s.popScratch.Dst
	if len(s.overrides) != 0 {
		if repl, ok := s.overrides[dst]; ok {
			dst = repl
		}
	}
	if ctx.Trace != nil {
		ctx.Trace(s.popScratch.String())
	}
	dst.HandleToken(ctx, &s.popScratch)
}

// ReserveTokens pre-sizes the scheduler's token arena so n signal tokens
// can be live at once without a mid-run allocation. Controllers call it
// before a run, sized from the circuit (ports, handlers, queue depth).
// Calendar bucket lanes are NOT pre-carved here: most runs touch only a
// handful of distinct instants, so eagerly sizing all 64 buckets
// multiplied resident bytes (and with them GC pressure) for storage
// that never held an event. First-touched buckets carve their lanes
// from the scheduler's shared slab in growBucketLanes instead.
func (s *Scheduler) ReserveTokens(n int) {
	s.arena.reserve(n)
}

// RunOptions bounds a scheduler run.
type RunOptions struct {
	// Until stops the run before delivering any token strictly later than
	// this time. Zero means no time bound.
	Until Time
	// MaxInstants stops the run after this many distinct time instants
	// have completed. Zero means no instant bound. Virtual fault
	// simulation uses MaxInstants=1 for its single-instant injection runs.
	MaxInstants int
}

// Run delivers tokens in time order until the queue drains or a bound in
// opts is hit. ctx must have been created by the scheduler's Context
// method (or be nil, in which case a fresh context is used).
func (s *Scheduler) Run(ctx *Context, opts RunOptions) error {
	if ctx == nil {
		ctx = s.NewContext()
	}
	limit := s.EventLimit
	if limit == 0 {
		limit = DefaultEventLimit
	}
	return s.drain(ctx, opts, limit)
}

// drain is Run's instant loop (DESIGN.md §12), split from Run so the
// context fallback's allocation stays out of the annotated body. Each
// outer pass advances the clock to the earliest pending instant, then
// delivers tokens due at it — calendar bucket entries and spill-heap
// tokens merged by sequence stamp — until the instant is dry. The old
// kernel's batch scratch buffer is gone: calendar pops are O(1) lane
// reads with no re-sift to amortize, so pop-one-deliver-one is already
// the fast path.
//
//gocad:noalloc
func (s *Scheduler) drain(ctx *Context, opts RunOptions, limit uint64) error {
	budget := limit
	instants := 0
	for s.pending > 0 {
		next, _ := s.NextEventTime()
		if opts.Until != 0 && next > opts.Until {
			return nil
		}
		if next > s.now || !s.started {
			s.started = true
			s.now = next
		}
		// The bucket addressing s.now is stable for the whole instant, so
		// the merged bucket-vs-spill pop is inlined here rather than
		// calling hasDue+PopDue per token (PopDue stays the API for
		// external coordinators; this is the same merge, fused).
		b := s.bucketFor(s.now)
		for {
			bucketDue := b.head < b.n && b.time == s.now
			if bucketDue && b.unsorted {
				sortBucket(b)
			}
			spillDue := len(s.spill) > 0 && s.spill[0].tok.When() == s.now
			if !bucketDue && !spillDue {
				break
			}
			if budget == 0 {
				return eventLimitError(limit, s.now)
			}
			budget--
			if bucketDue && (!spillDue || b.seqs[b.head] < s.spill[0].seq) {
				s.popBucket(b)
				s.deliverScratch(ctx)
			} else {
				it := s.spill.popMin()
				s.pending--
				s.deliver(ctx, it.tok)
			}
		}
		// The loop above exits only when nothing remains at s.now — a
		// delivery that reposted into this instant keeps it running — so
		// the instant is complete and its hooks fire.
		for _, h := range s.hooks {
			h(ctx, s.now)
		}
		instants++
		if opts.MaxInstants != 0 && instants >= opts.MaxInstants {
			return nil
		}
	}
	return nil
}

// eventLimitError builds the runaway-simulation error. Outlined behind
// //go:noinline so its fmt boxing stays off drain's //gocad:noalloc
// steady-state path.
//
//go:noinline
func eventLimitError(limit uint64, now Time) error {
	return fmt.Errorf("%w (limit %d at time %d)", ErrEventLimit, limit, now)
}

// NewContext returns a Context bound to this scheduler.
func (s *Scheduler) NewContext() *Context { return &Context{sched: s} }

// Reset invokes ResetState on every handler that supports it, giving
// autonomous modules the chance to seed their first self-trigger for this
// scheduler.
func (s *Scheduler) Reset(ctx *Context, handlers []Handler) {
	if ctx == nil {
		ctx = s.NewContext()
	}
	for _, h := range handlers {
		if r, ok := h.(Resettable); ok {
			r.ResetState(ctx)
		}
	}
}
