package sim

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/signal"
)

// recorder is a test handler that records every token it receives and can
// optionally schedule follow-ups.
type recorder struct {
	name     string
	mu       sync.Mutex
	got      []Token
	times    []Time
	onToken  func(ctx *Context, tok Token)
	state    StateTable
	resetRan int
}

func (r *recorder) HandlerName() string { return r.name }

func (r *recorder) HandleToken(ctx *Context, tok Token) {
	r.mu.Lock()
	r.got = append(r.got, tok)
	r.times = append(r.times, ctx.Now())
	r.mu.Unlock()
	if r.onToken != nil {
		r.onToken(ctx, tok)
	}
}

func (r *recorder) ResetState(ctx *Context) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.resetRan++
}

func (r *recorder) ReleaseState(id SchedulerID) { r.state.Delete(id) }

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.got)
}

func TestSchedulerDeliversInTimeOrder(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r"}
	for _, tm := range []Time{30, 10, 20, 10} {
		s.Post(&SelfToken{T: tm, Dst: r})
	}
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []Time{10, 10, 20, 30}
	if len(r.times) != len(want) {
		t.Fatalf("delivered %d tokens, want %d", len(r.times), len(want))
	}
	for i, tm := range want {
		if r.times[i] != tm {
			t.Errorf("delivery %d at time %d, want %d", i, r.times[i], tm)
		}
	}
}

func TestSchedulerSameInstantFIFO(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r"}
	for i := 0; i < 5; i++ {
		s.Post(&SelfToken{T: 5, Dst: r, Tag: string(rune('a' + i))})
	}
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	for i, tok := range r.got {
		if tok.(*SelfToken).Tag != string(rune('a'+i)) {
			t.Errorf("same-instant order violated at %d: %q", i, tok.(*SelfToken).Tag)
		}
	}
}

func TestSchedulerPostInPastPanics(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r", onToken: func(ctx *Context, tok Token) {
		defer func() {
			if recover() == nil {
				t.Error("posting in the past did not panic")
			}
		}()
		ctx.Post(&SelfToken{T: ctx.Now() - 1, Dst: tok.Target()})
	}}
	s.Post(&SelfToken{T: 10, Dst: r})
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestSchedulerUntilBound(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r"}
	for _, tm := range []Time{1, 2, 3, 4, 5} {
		s.Post(&SelfToken{T: tm, Dst: r})
	}
	if err := s.Run(nil, RunOptions{Until: 3}); err != nil {
		t.Fatal(err)
	}
	if r.count() != 3 {
		t.Errorf("delivered %d tokens, want 3", r.count())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
}

func TestSchedulerMaxInstants(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r"}
	for _, tm := range []Time{1, 1, 2, 3} {
		s.Post(&SelfToken{T: tm, Dst: r})
	}
	if err := s.Run(nil, RunOptions{MaxInstants: 1}); err != nil {
		t.Fatal(err)
	}
	if r.count() != 2 {
		t.Errorf("single-instant run delivered %d tokens, want 2", r.count())
	}
}

func TestSchedulerSelfTriggerChain(t *testing.T) {
	// A clock-generator-like module reschedules itself 10 times.
	s := NewScheduler()
	var clock *recorder
	clock = &recorder{name: "clk", onToken: func(ctx *Context, tok Token) {
		if ctx.Now() < 100 {
			ctx.Post(&SelfToken{T: ctx.Now() + 10, Dst: clock})
		}
	}}
	s.Post(&SelfToken{T: 10, Dst: clock})
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if clock.count() != 10 {
		t.Errorf("self-trigger chain length = %d, want 10", clock.count())
	}
}

func TestSchedulerEventLimit(t *testing.T) {
	s := NewScheduler()
	s.EventLimit = 100
	var loop *recorder
	loop = &recorder{name: "loop", onToken: func(ctx *Context, tok Token) {
		ctx.Post(&SelfToken{T: ctx.Now(), Dst: loop}) // zero-delay livelock
	}}
	s.Post(&SelfToken{T: 1, Dst: loop})
	err := s.Run(nil, RunOptions{})
	if !errors.Is(err, ErrEventLimit) {
		t.Fatalf("err = %v, want ErrEventLimit", err)
	}
}

func TestSchedulerInstantHook(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r"}
	var hooked []Time
	s.AddInstantHook(func(ctx *Context, completed Time) {
		hooked = append(hooked, completed)
	})
	for _, tm := range []Time{1, 1, 3} {
		s.Post(&SelfToken{T: tm, Dst: r})
	}
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 2 || hooked[0] != 1 || hooked[1] != 3 {
		t.Errorf("instant hooks fired at %v, want [1 3]", hooked)
	}
}

func TestSchedulerHookSeesReschedule(t *testing.T) {
	// A token rescheduled within the same instant keeps the instant open:
	// the hook must fire only once the instant truly drains.
	s := NewScheduler()
	fired := 0
	s.AddInstantHook(func(ctx *Context, completed Time) { fired++ })
	extra := true
	var r *recorder
	r = &recorder{name: "r", onToken: func(ctx *Context, tok Token) {
		if extra {
			extra = false
			ctx.Post(&SelfToken{T: ctx.Now(), Dst: r})
		}
	}}
	s.Post(&SelfToken{T: 7, Dst: r})
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("hook fired %d times, want 1", fired)
	}
	if r.count() != 2 {
		t.Errorf("tokens delivered = %d, want 2", r.count())
	}
}

func TestSchedulerOverride(t *testing.T) {
	s := NewScheduler()
	orig := &recorder{name: "orig"}
	repl := &recorder{name: "repl"}
	s.Override(orig, repl)
	s.Post(&SelfToken{T: 1, Dst: orig})
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if orig.count() != 0 || repl.count() != 1 {
		t.Errorf("override routing wrong: orig=%d repl=%d", orig.count(), repl.count())
	}
	// Removing the override restores normal delivery.
	s.Override(orig, nil)
	s.Post(&SelfToken{T: 2, Dst: orig})
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if orig.count() != 1 {
		t.Errorf("after removal orig=%d, want 1", orig.count())
	}
}

func TestSignalTokenAccessors(t *testing.T) {
	r := &recorder{name: "m"}
	tok := &SignalToken{T: 42, Dst: r, Port: 2, Value: signal.BitValue{B: signal.B1}, Src: "src"}
	if tok.When() != 42 || tok.Target() != Handler(r) {
		t.Error("SignalToken accessors wrong")
	}
	if tok.String() == "" {
		t.Error("SignalToken.String empty")
	}
	et := &EstimationToken{T: 1, Dst: r}
	ct := &ControlToken{T: 2, Dst: r}
	st := &SelfToken{T: 3, Dst: r}
	if et.When() != 1 || ct.When() != 2 || st.When() != 3 {
		t.Error("token When() accessors wrong")
	}
	if et.Target() != Handler(r) || ct.Target() != Handler(r) || st.Target() != Handler(r) {
		t.Error("token Target() accessors wrong")
	}
}

func TestSchedulerUniqueIDs(t *testing.T) {
	seen := make(map[SchedulerID]bool)
	for i := 0; i < 100; i++ {
		id := NewScheduler().ID()
		if seen[id] {
			t.Fatalf("duplicate scheduler ID %d", id)
		}
		seen[id] = true
	}
}
