package sim

import "sync"

// StateTable is the per-scheduler state lookup table every module keeps
// its mutable simulation state in — the paper's "LUTs addressed by unique
// identifiers associated with the schedulers". Because each scheduler runs
// on its own goroutine but many schedulers may touch the same module, the
// table itself is synchronized, while each entry is owned exclusively by
// its scheduler's goroutine and needs no further locking.
type StateTable struct {
	mu sync.RWMutex
	m  map[SchedulerID]any
}

// Get returns the state stored for the given scheduler, if any.
func (st *StateTable) Get(id SchedulerID) (any, bool) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	v, ok := st.m[id]
	return v, ok
}

// GetOrCreate returns the state for the scheduler, calling create to build
// it on first use. create runs at most once per scheduler ID.
func (st *StateTable) GetOrCreate(id SchedulerID, create func() any) any {
	st.mu.RLock()
	v, ok := st.m[id]
	st.mu.RUnlock()
	if ok {
		return v
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if v, ok := st.m[id]; ok {
		return v
	}
	if st.m == nil {
		st.m = make(map[SchedulerID]any)
	}
	v = create()
	st.m[id] = v
	return v
}

// Set stores state for the scheduler, replacing any previous entry.
func (st *StateTable) Set(id SchedulerID, v any) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.m == nil {
		st.m = make(map[SchedulerID]any)
	}
	st.m[id] = v
}

// Delete discards the state for the scheduler, releasing its memory after
// a simulation run completes.
func (st *StateTable) Delete(id SchedulerID) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.m, id)
}

// Len returns the number of schedulers currently holding state.
func (st *StateTable) Len() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return len(st.m)
}
