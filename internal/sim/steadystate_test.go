package sim

import (
	"testing"

	"repro/internal/signal"
)

// TestPostDeliverZeroAlloc gates the kernel's steady-state hot path at
// exactly zero allocations per event: acquire an arena signal token,
// post it into a calendar bucket, advance, pop, deliver, release. The
// warm-up cycle interns the handler, claims the bucket lanes, and
// seeds the arena; after that, every cycle must reuse the same storage.
// This is the invariant the //gocad:noalloc lint annotations promise
// statically — here it is measured dynamically, and it must hold under
// -race too (the race detector must not be fed fresh allocations to
// shadow).
func TestPostDeliverZeroAlloc(t *testing.T) {
	s := NewScheduler()
	s.ReserveTokens(16)
	ctx := s.NewContext()
	h := &fuzzNullHandler{}

	// A pre-boxed value: BitValue is pointer-free and fits in an
	// interface word, but boxing a composite literal per iteration
	// would allocate in the measured loop.
	var v signal.Value = signal.BitValue{B: signal.B1}

	cycle := func() {
		tok := ctx.AcquireSignal(s.Now()+1, h, 0, v, "steady")
		s.Post(tok)
		nt, ok := s.NextEventTime()
		if !ok {
			t.Fatal("posted token not visible to NextEventTime")
		}
		s.AdvanceTo(nt)
		popped, _, ok := s.PopDue(nt)
		if !ok {
			t.Fatal("posted token not due at its own time")
		}
		s.Deliver(ctx, popped)
	}

	// Warm up: intern the handler, fault in the bucket lanes, populate
	// the arena free list.
	for i := 0; i < 8; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(200, cycle); allocs != 0 {
		t.Fatalf("steady-state post+deliver allocates %.1f allocs/op, want 0", allocs)
	}
}
