package sim

import (
	"testing"
)

// TestPostInterceptCapturesAndConsumes: an installed intercept sees every
// posted token after the causality check; consumed tokens never reach the
// queue and do not advance the sequence counter, while refused tokens are
// sequenced normally.
func TestPostInterceptCapturesAndConsumes(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r"}
	var captured []Token
	s.SetPostIntercept(func(tok Token) bool {
		if st, ok := tok.(*SelfToken); ok && st.Tag == "capture" {
			captured = append(captured, tok)
			return true
		}
		return false
	})
	s.Post(&SelfToken{T: 1, Dst: r, Tag: "capture"})
	s.Post(&SelfToken{T: 1, Dst: r, Tag: "keep"})
	s.Post(&SelfToken{T: 2, Dst: r, Tag: "capture"})
	if len(captured) != 2 {
		t.Fatalf("intercept captured %d tokens, want 2", len(captured))
	}
	if s.Pending() != 1 {
		t.Fatalf("queue holds %d tokens, want 1 (captured tokens must not enqueue)", s.Pending())
	}
	s.SetPostIntercept(nil)
	s.Post(&SelfToken{T: 3, Dst: r, Tag: "capture"})
	if s.Pending() != 2 {
		t.Fatalf("queue holds %d tokens after removing intercept, want 2", s.Pending())
	}
	if len(captured) != 2 {
		t.Fatalf("removed intercept still captured (%d tokens)", len(captured))
	}
}

// TestPostInterceptStillChecksCausality: interception happens after the
// past-time panic, so a coordinator can never capture a corrupt token.
func TestPostInterceptStillChecksCausality(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r"}
	s.Post(&SelfToken{T: 5, Dst: r})
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	s.SetPostIntercept(func(Token) bool { return true })
	defer func() {
		if recover() == nil {
			t.Fatal("posting a past-time token with an intercept installed did not panic")
		}
	}()
	s.Post(&SelfToken{T: 1, Dst: r})
}

// TestPostSequencedOrdersDelivery: caller-assigned stamps, not posting
// order, decide same-instant delivery order.
func TestPostSequencedOrdersDelivery(t *testing.T) {
	s := NewScheduler()
	a := &recorder{name: "a"}
	s.PostSequenced(&SelfToken{T: 10, Dst: a, Tag: "third"}, 30)
	s.PostSequenced(&SelfToken{T: 10, Dst: a, Tag: "first"}, 10)
	s.PostSequenced(&SelfToken{T: 10, Dst: a, Tag: "second"}, 20)
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	want := []string{"first", "second", "third"}
	if len(a.got) != len(want) {
		t.Fatalf("delivered %d tokens, want %d", len(a.got), len(want))
	}
	for i, tok := range a.got {
		if tag := tok.(*SelfToken).Tag; tag != want[i] {
			t.Fatalf("delivery %d is %q, want %q", i, tag, want[i])
		}
	}
}

// TestStepAPIDrainsOneInstant: NextEventTime + PopDue + Deliver walk one
// instant by hand, equivalent to what Run would do, leaving later
// instants untouched.
func TestStepAPIDrainsOneInstant(t *testing.T) {
	s := NewScheduler()
	r := &recorder{name: "r"}
	s.Post(&SelfToken{T: 10, Dst: r, Tag: "x"})
	s.Post(&SelfToken{T: 10, Dst: r, Tag: "y"})
	s.Post(&SelfToken{T: 20, Dst: r, Tag: "later"})

	next, ok := s.NextEventTime()
	if !ok || next != 10 {
		t.Fatalf("NextEventTime = %d,%v, want 10,true", next, ok)
	}
	s.AdvanceTo(next)
	ctx := s.NewContext()
	var seqs []uint64
	for {
		tok, seq, ok := s.PopDue(next)
		if !ok {
			break
		}
		seqs = append(seqs, seq)
		s.Deliver(ctx, tok)
	}
	if len(seqs) != 2 || seqs[0] >= seqs[1] {
		t.Fatalf("instant 10 popped seqs %v, want 2 ascending stamps", seqs)
	}
	if got := r.count(); got != 2 {
		t.Fatalf("delivered %d tokens, want 2", got)
	}
	if s.Delivered() != 2 {
		t.Fatalf("Delivered() = %d, want 2", s.Delivered())
	}
	if next, ok := s.NextEventTime(); !ok || next != 20 {
		t.Fatalf("NextEventTime after draining instant 10 = %d,%v, want 20,true", next, ok)
	}
	if _, _, ok := s.PopDue(10); ok {
		t.Fatal("PopDue(10) returned a token from instant 20")
	}
	if r.times[0] != 10 || r.times[1] != 10 {
		t.Fatalf("handlers saw Now()=%v, want 10 for both", r.times)
	}
}

// TestAdvanceToGuardsRegression: the clock may move forward freely but
// never backwards once started.
func TestAdvanceToGuardsRegression(t *testing.T) {
	s := NewScheduler()
	s.AdvanceTo(5)
	s.AdvanceTo(5) // same instant is fine
	s.AdvanceTo(9)
	if s.Now() != 9 {
		t.Fatalf("Now() = %d, want 9", s.Now())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo backwards did not panic")
		}
	}()
	s.AdvanceTo(3)
}

// TestStepMatchesRun: hand-stepping an entire multi-instant cascade via
// the step API produces the same per-handler delivery order as Run. The
// cascade reposts at the same instant, so FIFO same-instant semantics are
// exercised, not just time ordering.
func TestStepMatchesRun(t *testing.T) {
	build := func() (*Scheduler, *recorder) {
		s := NewScheduler()
		r := &recorder{name: "r"}
		r.onToken = func(ctx *Context, tok Token) {
			st := tok.(*SelfToken)
			if st.Tag == "seedling" {
				ctx.Post(&SelfToken{T: ctx.Now(), Dst: r, Tag: "child"})
				ctx.Post(&SelfToken{T: ctx.Now() + 5, Dst: r, Tag: "future"})
			}
		}
		s.Post(&SelfToken{T: 10, Dst: r, Tag: "seedling"})
		s.Post(&SelfToken{T: 10, Dst: r, Tag: "plain"})
		return s, r
	}

	sRun, rRun := build()
	if err := sRun.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	sStep, rStep := build()
	ctx := sStep.NewContext()
	for {
		next, ok := sStep.NextEventTime()
		if !ok {
			break
		}
		sStep.AdvanceTo(next)
		for {
			tok, _, ok := sStep.PopDue(next)
			if !ok {
				break
			}
			sStep.Deliver(ctx, tok)
		}
	}

	if len(rRun.got) != len(rStep.got) {
		t.Fatalf("Run delivered %d, step API delivered %d", len(rRun.got), len(rStep.got))
	}
	for i := range rRun.got {
		a, b := rRun.got[i].(*SelfToken), rStep.got[i].(*SelfToken)
		if a.Tag != b.Tag || rRun.times[i] != rStep.times[i] {
			t.Fatalf("delivery %d: Run %s@%d vs step %s@%d",
				i, a.Tag, rRun.times[i], b.Tag, rStep.times[i])
		}
	}
}
