// Package sim implements gocad's multilevel event-driven simulation
// kernel: the token/scheduler machinery of the JavaCAD backplane.
//
// The superclass for any event is a token; a scheduler handles scheduling
// and delivery of all tokens. Multiple schedulers can be instantiated and
// run in concurrent goroutines over the same design without interference:
// every module stores its per-scheduler state in a lookup table addressed
// by the scheduler's unique identifier, and a module can schedule a new
// token only while it is handling one — the newly created token is
// automatically joined to the same scheduler. Tokens are not only
// functional events (changes of signal values): they also implement a
// general message-passing engine used for estimation, setup control, and
// module self-triggering.
package sim

import (
	"fmt"
	"sync"

	"repro/internal/signal"
)

// Time is the discrete simulation time, in abstract time units. A "time
// instant" is the set of all tokens that share one Time value.
type Time int64

// Handler is anything that can receive tokens from a scheduler — in
// practice, design modules. Handlers must be safe for concurrent use by
// multiple schedulers: all mutable simulation state must live in
// per-scheduler state tables (see StateTable), never in the handler
// itself.
type Handler interface {
	// HandlerName identifies the handler in diagnostics and traces.
	HandlerName() string
	// HandleToken processes one token delivered by a scheduler. It may
	// schedule follow-up tokens through ctx.
	HandleToken(ctx *Context, tok Token)
}

// Resettable is implemented by handlers that need per-scheduler
// initialization before a simulation run starts — e.g. autonomous
// modules (clock generators) that must seed their first self-trigger.
type Resettable interface {
	// ResetState initializes the handler's state for ctx's scheduler.
	ResetState(ctx *Context)
}

// Token is the superclass of every event in the kernel.
type Token interface {
	// When returns the simulation time the token is scheduled for.
	When() Time
	// Target returns the handler the token must be delivered to.
	Target() Handler
}

// SignalToken is a functional event: a signal value arriving at a
// handler's input port. Connectors create these when a module drives its
// output port.
type SignalToken struct {
	T     Time
	Dst   Handler
	Port  int          // index of the destination port on Dst
	Value signal.Value // the new signal value
	Src   string       // producing module, for traces

	// pooled marks tokens drawn from the shared pool (AcquireSignalToken);
	// the scheduler returns them after delivery.
	pooled bool
	// arenaOwned marks tokens drawn from a scheduler's slab arena
	// (Context.AcquireSignal); the delivering scheduler releases them to
	// its own arena after delivery.
	arenaOwned bool
}

// signalTokenPool recycles SignalTokens across simulation runs. Signal
// tokens dominate the kernel's allocation profile — every port drive in
// every concurrent scheduler creates one — and their lifetime is strictly
// bounded by delivery, so pooling them removes the dominant per-event
// allocation.
var signalTokenPool = sync.Pool{New: func() any { return new(SignalToken) }}

// AcquireSignalToken returns a SignalToken drawn from a process-wide pool.
// The scheduler recycles pooled tokens automatically after delivery, so
// two rules bind their users: the receiving handler must not retain the
// token past HandleToken (copy the fields it needs), and the poster must
// not re-post a token it has already posted. Hand-built &SignalToken{}
// values remain valid and are never recycled.
func AcquireSignalToken(t Time, dst Handler, port int, v signal.Value, src string) *SignalToken {
	tok := signalTokenPool.Get().(*SignalToken)
	*tok = SignalToken{T: t, Dst: dst, Port: port, Value: v, Src: src, pooled: true}
	return tok
}

// recycle returns a pooled token for reuse; hand-built tokens are left
// alone.
func (t *SignalToken) recycle() {
	if !t.pooled {
		return
	}
	*t = SignalToken{}
	signalTokenPool.Put(t)
}

// When returns the scheduled time.
func (t *SignalToken) When() Time { return t.T }

// Target returns the destination handler.
func (t *SignalToken) Target() Handler { return t.Dst }

// String renders the token for traces.
func (t *SignalToken) String() string {
	return fmt.Sprintf("signal@%d %s->%s.port[%d]=%s", t.T, t.Src, t.Dst.HandlerName(), t.Port, t.Value)
}

// EstimationToken asks a module to run the estimators selected by the
// current setup and append their values to the estimation record. The
// current setup always travels with the token, enabling runtime retrieval
// of the desired estimators (the paper's per-setup hash table lookup).
type EstimationToken struct {
	T     Time
	Dst   Handler
	Setup any // the estimation setup (an *estim.Setup); opaque to the kernel
}

// When returns the scheduled time.
func (t *EstimationToken) When() Time { return t.T }

// Target returns the destination handler.
func (t *EstimationToken) Target() Handler { return t.Dst }

// ControlToken carries out-of-band design manipulation: setup
// distribution, parameter collection, tracing control, and similar
// message-passing uses.
type ControlToken struct {
	T       Time
	Dst     Handler
	Command string
	Payload any
}

// When returns the scheduled time.
func (t *ControlToken) When() Time { return t.T }

// Target returns the destination handler.
func (t *ControlToken) Target() Handler { return t.Dst }

// SelfToken is a token a module schedules for itself — the self-trigger
// mechanism that implements autonomous components such as clock
// generators.
type SelfToken struct {
	T       Time
	Dst     Handler
	Tag     string
	Payload any
}

// When returns the scheduled time.
func (t *SelfToken) When() Time { return t.T }

// Target returns the destination handler.
func (t *SelfToken) Target() Handler { return t.Dst }
