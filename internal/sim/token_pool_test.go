package sim

import (
	"testing"

	"repro/internal/signal"
)

// recordingHandler copies the fields of every SignalToken it receives —
// the contract for handlers of pooled tokens (never retain the token).
type recordingHandler struct {
	ports  []int
	values []signal.Value
}

func (*recordingHandler) HandlerName() string { return "rec" }
func (h *recordingHandler) HandleToken(_ *Context, tok Token) {
	st := tok.(*SignalToken)
	h.ports = append(h.ports, st.Port)
	h.values = append(h.values, st.Value)
}

// TestPooledSignalTokenDelivery: pooled tokens must deliver exactly the
// fields they were acquired with, and recycling across many events must
// never cross-contaminate deliveries.
func TestPooledSignalTokenDelivery(t *testing.T) {
	h := &recordingHandler{}
	s := NewScheduler()
	const n = 100
	for i := 0; i < n; i++ {
		var b signal.Bit
		if i%2 == 1 {
			b = signal.B1
		}
		s.Post(AcquireSignalToken(Time(i+1), h, i, signal.BitValue{B: b}, "src"))
	}
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(h.ports) != n {
		t.Fatalf("delivered %d tokens, want %d", len(h.ports), n)
	}
	for i := 0; i < n; i++ {
		if h.ports[i] != i {
			t.Fatalf("delivery %d carried port %d", i, h.ports[i])
		}
		want := i%2 == 1
		if got := h.values[i].(signal.BitValue).B == signal.B1; got != want {
			t.Fatalf("delivery %d carried value %v", i, h.values[i])
		}
	}
}

// TestHandBuiltSignalTokenSurvivesDelivery: tokens built with a plain
// composite literal are not recycled — callers that retain them (tests,
// traces) must find the fields intact after the run.
func TestHandBuiltSignalTokenSurvivesDelivery(t *testing.T) {
	h := &recordingHandler{}
	s := NewScheduler()
	tok := &SignalToken{T: 5, Dst: h, Port: 3, Value: signal.BitValue{B: signal.B1}, Src: "keep"}
	s.Post(tok)
	if err := s.Run(nil, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if tok.T != 5 || tok.Port != 3 || tok.Src != "keep" || tok.Dst != Handler(h) {
		t.Errorf("hand-built token mutated after delivery: %+v", tok)
	}
}
