// Package trace exports simulation activity as Value Change Dump (VCD)
// files — IEEE 1364's waveform interchange format — so gocad runs can be
// inspected in any standard waveform viewer. Sources are either live
// (emit values as the simulation observes them) or post-hoc (dump the
// recorded histories of PrimaryOutput monitors).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/module"
	"repro/internal/signal"
	"repro/internal/sim"
)

// SignalID identifies one declared VCD variable.
type SignalID int

// VCD writes a Value Change Dump incrementally. Declare signals first,
// then emit changes in nondecreasing time order, then Close.
type VCD struct {
	w         io.Writer
	timescale string
	scope     string

	names  []string
	widths []int
	codes  []string

	headerDone bool
	lastTime   sim.Time
	haveTime   bool
	err        error
}

// NewVCD returns a writer targeting w. timescale follows VCD syntax
// (e.g. "1ns"); scope names the design module.
func NewVCD(w io.Writer, timescale, scope string) *VCD {
	if timescale == "" {
		timescale = "1ns"
	}
	if scope == "" {
		scope = "gocad"
	}
	return &VCD{w: w, timescale: timescale, scope: scope}
}

// AddSignal declares a variable before the header is written.
func (v *VCD) AddSignal(name string, width int) (SignalID, error) {
	if v.headerDone {
		return 0, fmt.Errorf("trace: AddSignal after first Emit")
	}
	if width < 1 {
		return 0, fmt.Errorf("trace: signal %q width %d", name, width)
	}
	id := SignalID(len(v.names))
	v.names = append(v.names, name)
	v.widths = append(v.widths, width)
	v.codes = append(v.codes, idCode(int(id)))
	return id, nil
}

// idCode builds the compact VCD identifier code for the nth signal.
func idCode(n int) string {
	const alphabet = "!#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	var sb strings.Builder
	for {
		sb.WriteByte(alphabet[n%len(alphabet)])
		n /= len(alphabet)
		if n == 0 {
			break
		}
	}
	return sb.String()
}

// header writes the declaration section once.
func (v *VCD) header() {
	if v.headerDone || v.err != nil {
		return
	}
	v.headerDone = true
	v.printf("$timescale %s $end\n", v.timescale)
	v.printf("$scope module %s $end\n", v.scope)
	for i, name := range v.names {
		kind := "wire"
		v.printf("$var %s %d %s %s $end\n", kind, v.widths[i], v.codes[i], sanitize(name))
	}
	v.printf("$upscope $end\n$enddefinitions $end\n")
}

// sanitize strips VCD-hostile characters from identifiers.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\n':
			return '_'
		}
		return r
	}, s)
}

func (v *VCD) printf(format string, args ...any) {
	if v.err != nil {
		return
	}
	_, v.err = fmt.Fprintf(v.w, format, args...)
}

// Emit records a value change at the given simulation time. Times must
// be nondecreasing.
func (v *VCD) Emit(t sim.Time, id SignalID, val signal.Value) error {
	if v.err != nil {
		return v.err
	}
	if int(id) < 0 || int(id) >= len(v.names) {
		return fmt.Errorf("trace: unknown signal id %d", id)
	}
	v.header()
	if v.haveTime && t < v.lastTime {
		return fmt.Errorf("trace: time %d before %d", t, v.lastTime)
	}
	if !v.haveTime || t != v.lastTime {
		v.printf("#%d\n", t)
		v.lastTime = t
		v.haveTime = true
	}
	switch x := val.(type) {
	case signal.BitValue:
		v.printf("%s%s\n", strings.ToLower(x.B.String()), v.codes[id])
	case signal.WordValue:
		v.printf("b%s %s\n", strings.ToLower(x.W.String()), v.codes[id])
	default:
		// Custom payloads are traced as string metadata.
		v.printf("s%s %s\n", sanitize(val.String()), v.codes[id])
	}
	return v.err
}

// Close finalizes the dump (writing the header even for empty traces).
func (v *VCD) Close() error {
	v.header()
	return v.err
}

// observationEvent pairs a monitor's observation with its signal.
type observationEvent struct {
	id  SignalID
	obs module.Observation
	seq int
}

// DumpOutputs writes a complete VCD from the recorded histories of
// primary-output monitors for one scheduler's run.
func DumpOutputs(w io.Writer, timescale string, run sim.SchedulerID, outs []*module.PrimaryOutput) error {
	v := NewVCD(w, timescale, "design")
	var events []observationEvent
	for _, po := range outs {
		width := 1
		if ports := po.Ports(); len(ports) > 0 {
			width = ports[0].Width
		}
		id, err := v.AddSignal(po.ModuleName(), width)
		if err != nil {
			return err
		}
		for i, obs := range po.History(run) {
			events = append(events, observationEvent{id: id, obs: obs, seq: i})
		}
	}
	sort.SliceStable(events, func(i, j int) bool {
		return events[i].obs.Time < events[j].obs.Time
	})
	for _, e := range events {
		if err := v.Emit(e.obs.Time, e.id, e.obs.Value); err != nil {
			return err
		}
	}
	return v.Close()
}
