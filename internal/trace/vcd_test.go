package trace

import (
	"strings"
	"testing"

	"repro/internal/module"
	"repro/internal/signal"
)

func TestVCDBasicStructure(t *testing.T) {
	var sb strings.Builder
	v := NewVCD(&sb, "1ns", "top")
	clk, err := v.AddSignal("clk", 1)
	if err != nil {
		t.Fatal(err)
	}
	bus, err := v.AddSignal("data bus", 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Emit(0, clk, signal.BitValue{B: signal.B0}); err != nil {
		t.Fatal(err)
	}
	if err := v.Emit(5, clk, signal.BitValue{B: signal.B1}); err != nil {
		t.Fatal(err)
	}
	if err := v.Emit(5, bus, signal.WordValue{W: signal.WordFromUint64(9, 4)}); err != nil {
		t.Fatal(err)
	}
	if err := v.Close(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"$timescale 1ns $end",
		"$scope module top $end",
		"$var wire 1 ! clk $end",
		"$var wire 4 # data_bus $end", // spaces sanitized
		"$enddefinitions $end",
		"#0", "#5",
		"b1001 #",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("VCD missing %q:\n%s", want, out)
		}
	}
	// #5 must appear exactly once even though two changes happened there.
	if strings.Count(out, "#5\n") != 1 {
		t.Errorf("time #5 duplicated:\n%s", out)
	}
}

func TestVCDRejectsMisuse(t *testing.T) {
	var sb strings.Builder
	v := NewVCD(&sb, "", "")
	if _, err := v.AddSignal("w", 0); err == nil {
		t.Error("zero width accepted")
	}
	id, _ := v.AddSignal("a", 1)
	if err := v.Emit(10, id, signal.BitValue{B: signal.B1}); err != nil {
		t.Fatal(err)
	}
	if _, err := v.AddSignal("late", 1); err == nil {
		t.Error("AddSignal after Emit accepted")
	}
	if err := v.Emit(5, id, signal.BitValue{B: signal.B0}); err == nil {
		t.Error("time regression accepted")
	}
	if err := v.Emit(11, SignalID(99), signal.BitValue{B: signal.B0}); err == nil {
		t.Error("unknown signal accepted")
	}
}

func TestVCDXAndZValues(t *testing.T) {
	var sb strings.Builder
	v := NewVCD(&sb, "1ns", "s")
	id, _ := v.AddSignal("n", 1)
	v.Emit(1, id, signal.BitValue{B: signal.BX})
	v.Emit(2, id, signal.BitValue{B: signal.BZ})
	v.Close()
	out := sb.String()
	if !strings.Contains(out, "x!") || !strings.Contains(out, "z!") {
		t.Errorf("X/Z spelling wrong:\n%s", out)
	}
}

func TestDumpOutputsFromSimulation(t *testing.T) {
	c1 := module.NewWordConnector("c1", 4)
	in := module.NewPatternInput("in", 4, []signal.Value{
		signal.WordValue{W: signal.WordFromUint64(3, 4)},
		signal.WordValue{W: signal.WordFromUint64(12, 4)},
	}, 10, c1)
	out := module.NewPrimaryOutput("OUT", 4, c1)
	s := module.NewSimulation(module.NewCircuit("t", in, out))
	st := s.Start(nil)
	if st.Err != nil {
		t.Fatal(st.Err)
	}
	var sb strings.Builder
	if err := DumpOutputs(&sb, "1ns", st.Scheduler, []*module.PrimaryOutput{out}); err != nil {
		t.Fatal(err)
	}
	vcd := sb.String()
	for _, want := range []string{"$var wire 4 ! OUT $end", "#10", "#20", "b0011 !", "b1100 !"} {
		if !strings.Contains(vcd, want) {
			t.Errorf("dump missing %q:\n%s", want, vcd)
		}
	}
}

func TestIDCodesUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		c := idCode(i)
		if seen[c] {
			t.Fatalf("duplicate code %q at %d", c, i)
		}
		seen[c] = true
	}
}
