// Package watermark implements the related-work IP-protection baseline
// the paper contrasts itself against: netlist watermarking in the spirit
// of Kahng et al., "Watermarking Techniques for IP Protection" (DAC
// 1998). A keyed signature is embedded into a component's gate-level
// structure by function-preserving re-encodings, so that the provider can
// later prove (with the key) that an instantiated netlist carries its
// signature.
//
// The package exists to make the paper's critique concrete and testable:
// watermarking only protects the provider from ILLEGAL INSTANTIATION —
// the full netlist is still disclosed, so it offers no protection against
// a dishonest user reverse-engineering the architecture, which is exactly
// the gap virtual simulation closes. The tests demonstrate both the
// guarantee (function preserved, signature extractable, tamper-evident)
// and the limitation (every structural query works on a watermarked
// netlist).
package watermark

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/gate"
)

// Capacity returns the number of signature bits a netlist can carry: one
// per re-encodable slot (an AND or OR gate, or an already re-encoded
// complemented pair).
func Capacity(nl *gate.Netlist) int { return len(slots(nl)) }

// slot is one embeddable position, identified by the name of the net the
// (possibly re-encoded) gate drives. Identifying slots by driven-net name
// keeps selection stable across embedding, which changes gate counts.
type slot struct {
	net    string
	marked bool // driven by the complemented-pair encoding
}

// slots enumerates embeddable positions in name order.
func slots(nl *gate.Netlist) []slot {
	driver := make(map[gate.NetID]gate.Gate, nl.NumGates())
	for _, g := range nl.Gates() {
		driver[g.Out] = g
	}
	var out []slot
	for _, g := range nl.Gates() {
		switch g.Kind {
		case gate.And, gate.Or:
			out = append(out, slot{net: nl.NetName(g.Out)})
		case gate.Not:
			// A NOT fed by a single-fanout NAND/NOR is the marked form.
			fg, ok := driver[g.In[0]]
			if ok && (fg.Kind == gate.Nand || fg.Kind == gate.Nor) && nl.Fanout(g.In[0]) == 1 {
				out = append(out, slot{net: nl.NetName(g.Out), marked: true})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].net < out[j].net })
	return out
}

// selection derives the keyed slot order: a deterministic permutation of
// the slot universe seeded by HMAC(key, slot names).
func selection(key []byte, ss []slot) []int {
	mac := hmac.New(sha256.New, key)
	for _, s := range ss {
		mac.Write([]byte(s.net))
		mac.Write([]byte{0})
	}
	seedBytes := mac.Sum(nil)
	// A small keyed PRNG (xorshift* seeded from the MAC) drives a
	// Fisher-Yates shuffle.
	state := binary.BigEndian.Uint64(seedBytes[:8]) | 1
	next := func() uint64 {
		state ^= state >> 12
		state ^= state << 25
		state ^= state >> 27
		return state * 0x2545F4914F6CDD1D
	}
	idx := make([]int, len(ss))
	for i := range idx {
		idx[i] = i
	}
	for i := len(idx) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx
}

// Embed returns a copy of nl carrying the signature bits under the key.
// A bit of 1 re-encodes its slot's AND/OR gate into the equivalent
// complemented pair (NOT∘NAND or NOT∘NOR); a bit of 0 leaves the plain
// encoding. The resulting netlist computes the identical function.
func Embed(nl *gate.Netlist, key []byte, bits []bool) (*gate.Netlist, error) {
	ss := slots(nl)
	if len(bits) > len(ss) {
		return nil, fmt.Errorf("watermark: %d bits exceed capacity %d of %s", len(bits), len(ss), nl.Name)
	}
	order := selection(key, ss)
	mark := make(map[string]bool, len(bits)) // net name -> desired marked state
	for i, b := range bits {
		mark[ss[order[i]].net] = b
	}

	out := gate.NewNetlist(nl.Name)
	// Recreate nets in order so NetIDs are preserved.
	for id := 0; id < nl.NumNets(); id++ {
		name := nl.NetName(gate.NetID(id))
		if nl.IsInput(gate.NetID(id)) {
			out.AddInput(name)
		} else {
			out.AddNet(name)
		}
	}
	// driver lets a selected NOT slot find its complemented pair, so a
	// 0-bit can DEMOTE a naturally marked slot back to the plain form.
	driver := make(map[gate.NetID]gate.Gate, nl.NumGates())
	for _, g := range nl.Gates() {
		driver[g.Out] = g
	}
	for _, g := range nl.Gates() {
		name := nl.NetName(g.Out)
		want, selected := mark[name]
		switch {
		case selected && want && (g.Kind == gate.And || g.Kind == gate.Or):
			// Promote: plain gate -> complemented pair.
			inv := gate.Nand
			if g.Kind == gate.Or {
				inv = gate.Nor
			}
			mid := out.AddGate(inv, "wm."+name, g.In...)
			out.AddGateTo(gate.Not, g.Out, mid)
		case selected && !want && g.Kind == gate.Not:
			// Demote: complemented pair -> plain gate. The mid gate is
			// still copied (it becomes dead logic) to keep net numbering.
			fg, ok := driver[g.In[0]]
			if ok && (fg.Kind == gate.Nand || fg.Kind == gate.Nor) && nl.Fanout(g.In[0]) == 1 {
				plain := gate.And
				if fg.Kind == gate.Nor {
					plain = gate.Or
				}
				out.AddGateTo(plain, g.Out, fg.In...)
			} else {
				out.AddGateTo(g.Kind, g.Out, g.In...)
			}
		default:
			out.AddGateTo(g.Kind, g.Out, g.In...)
		}
	}
	for id := 0; id < nl.NumNets(); id++ {
		if nl.IsOutput(gate.NetID(id)) {
			out.MarkOutput(gate.NetID(id))
		}
	}
	if err := out.Build(); err != nil {
		return nil, err
	}
	return out, nil
}

// Extract reads n signature bits back out of a (claimed) watermarked
// netlist under the key.
func Extract(nl *gate.Netlist, key []byte, n int) ([]bool, error) {
	ss := slots(nl)
	if n > len(ss) {
		return nil, fmt.Errorf("watermark: %d bits exceed slot count %d", n, len(ss))
	}
	order := selection(key, ss)
	bits := make([]bool, n)
	for i := 0; i < n; i++ {
		bits[i] = ss[order[i]].marked
	}
	return bits, nil
}

// Verify reports whether the netlist carries the signature under the key.
func Verify(nl *gate.Netlist, key []byte, bits []bool) bool {
	got, err := Extract(nl, key, len(bits))
	if err != nil {
		return false
	}
	for i := range bits {
		if got[i] != bits[i] {
			return false
		}
	}
	return true
}

// SignatureFromString packs a string into signature bits (8 per byte,
// MSB first), for readable test signatures.
func SignatureFromString(s string) []bool {
	bits := make([]bool, 0, 8*len(s))
	for i := 0; i < len(s); i++ {
		for b := 7; b >= 0; b-- {
			bits = append(bits, s[i]&(1<<uint(b)) != 0)
		}
	}
	return bits
}
