package watermark

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/fault"
	"repro/internal/gate"
	"repro/internal/ppp"
	"repro/internal/signal"
)

func testKey() []byte { return []byte("provider-signing-key-0123456789a") }

func TestCapacityPositive(t *testing.T) {
	nl := gate.ArrayMultiplier(8)
	if Capacity(nl) < 64 {
		t.Errorf("capacity = %d, expected many AND/OR slots", Capacity(nl))
	}
}

func TestEmbedExtractRoundTrip(t *testing.T) {
	nl := gate.ArrayMultiplier(8)
	sig := SignatureFromString("ACME-IP(c)1999")
	wm, err := Embed(nl, testKey(), sig)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(wm, testKey(), sig) {
		t.Fatal("signature does not verify")
	}
	got, err := Extract(wm, testKey(), len(sig))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sig {
		if got[i] != sig[i] {
			t.Fatalf("bit %d mismatch", i)
		}
	}
}

func TestWatermarkPreservesFunction(t *testing.T) {
	nl := gate.ArrayMultiplier(6)
	sig := SignatureFromString("WM")
	wm, err := Embed(nl, testKey(), sig)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		v := uint64(r.Intn(1 << 12))
		a, err := nl.Eval(nl.InputWord(v))
		if err != nil {
			t.Fatal(err)
		}
		b, err := wm.Eval(wm.InputWord(v))
		if err != nil {
			t.Fatal(err)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("function changed at input %d output %d", v, j)
			}
		}
	}
}

func TestWrongKeyDoesNotVerify(t *testing.T) {
	nl := gate.ArrayMultiplier(8)
	sig := SignatureFromString("owner")
	wm, err := Embed(nl, testKey(), sig)
	if err != nil {
		t.Fatal(err)
	}
	other := []byte("a-completely-different-key-00000")
	if Verify(wm, other, sig) {
		t.Error("signature verified under the wrong key")
	}
}

func TestUnwatermarkedDoesNotVerify(t *testing.T) {
	nl := gate.ArrayMultiplier(8)
	sig := SignatureFromString("owner")
	if Verify(nl, testKey(), sig) {
		t.Error("virgin netlist verified a signature")
	}
}

func TestCapacityExceededRejected(t *testing.T) {
	nl := gate.RippleAdder(2)
	big := make([]bool, Capacity(nl)+1)
	if _, err := Embed(nl, testKey(), big); err == nil {
		t.Error("oversized signature accepted")
	}
	if _, err := Extract(nl, testKey(), Capacity(nl)+1); err == nil {
		t.Error("oversized extraction accepted")
	}
}

func TestDemotionOfNaturallyMarkedSlots(t *testing.T) {
	// A circuit already containing a complemented pair: embedding a
	// 0-bit on that slot must demote it so extraction is faithful.
	nl := gate.NewNetlist("nat")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	mid := nl.AddGate(gate.Nand, "mid", a, b)
	o := nl.AddGate(gate.Not, "o", mid)
	nl.MarkOutput(o)
	if Capacity(nl) != 1 {
		t.Fatalf("capacity = %d, want 1", Capacity(nl))
	}
	wm, err := Embed(nl, testKey(), []bool{false})
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(wm, testKey(), []bool{false}) {
		t.Error("demoted slot reads back as 1")
	}
	// Function must still be AND.
	res, err := wm.Eval(wm.InputWord(0b11))
	if err != nil {
		t.Fatal(err)
	}
	if res[0].String() != "1" {
		t.Errorf("demoted AND(1,1) = %v", res[0])
	}
}

// TestWatermarkLimitation demonstrates the paper's critique: the
// watermarked netlist remains fully analyzable — structure, power, and
// faults are all exposed to whoever holds the netlist, signature or not.
func TestWatermarkLimitation(t *testing.T) {
	nl := gate.ArrayMultiplier(6)
	wm, err := Embed(nl, testKey(), SignatureFromString("X"))
	if err != nil {
		t.Fatal(err)
	}
	// Full structural access:
	if wm.NumGates() == 0 || len(wm.Gates()) == 0 {
		t.Fatal("gates hidden?")
	}
	// Accurate power analysis works for anyone:
	sim, err := ppp.NewSimulator(wm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run([][]signal.Bit{wm.InputWord(0), wm.InputWord(0xFFF)}); err != nil {
		t.Fatal(err)
	}
	if sim.Report().TotalEnergy <= 0 {
		t.Error("power analysis yielded nothing")
	}
	// Fault analysis works for anyone:
	if len(fault.Collapse(wm)) == 0 {
		t.Fatal("fault universe hidden?")
	}
}

func TestWatermarkRoundTripProperty(t *testing.T) {
	// Any signature that fits must round-trip, and the watermarked
	// netlist must stay functionally identical, for random signatures
	// over a fixed circuit.
	nl := gate.ArrayMultiplier(4)
	cap := Capacity(nl)
	f := func(seed int64, nBitsRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nBitsRaw)%cap + 1
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = r.Intn(2) == 1
		}
		wm, err := Embed(nl, testKey(), bits)
		if err != nil {
			return false
		}
		if !Verify(wm, testKey(), bits) {
			return false
		}
		// Sampled functional check.
		for k := 0; k < 8; k++ {
			v := uint64(r.Intn(256))
			a, err1 := nl.Eval(nl.InputWord(v))
			b, err2 := wm.Eval(wm.InputWord(v))
			if err1 != nil || err2 != nil {
				return false
			}
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
