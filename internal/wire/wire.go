// Package wire provides the low-level primitives of gocad's hand-rolled
// binary serialization (wire format v1, DESIGN.md §12): little-endian
// fixed-width integers, unsigned varints, length-prefixed byte and
// string sections, and the packed encodings of the domain's hot payload
// shapes (four-valued signal bits, words, pattern batches, float64
// sample vectors).
//
// Every Append* function appends to a caller-supplied buffer and returns
// the extended slice, so encoders can reuse one scratch buffer across
// calls and allocate nothing in steady state. Every decoder consumes a
// prefix of its input and returns the remaining bytes; decoders are
// strict — a truncated buffer, an over-long varint, or a length prefix
// that exceeds the remaining input yields an error, never a panic, and
// never an allocation sized from unvalidated input (element counts are
// bounds-checked against the bytes actually present before any make).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/signal"
)

// ErrTruncated reports input that ended before the value it promised.
var ErrTruncated = errors.New("wire: truncated input")

// AppendUvarint appends v in unsigned varint encoding.
//
//gocad:noalloc
func AppendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// Uvarint consumes one unsigned varint and returns the remaining bytes.
func Uvarint(b []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		if n == 0 {
			return 0, nil, ErrTruncated
		}
		return 0, nil, errors.New("wire: varint overflows 64 bits")
	}
	return v, b[n:], nil
}

// AppendBytes appends a length-prefixed byte section.
//
//gocad:noalloc
func AppendBytes(b, p []byte) []byte {
	b = AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

// Bytes consumes one length-prefixed byte section. The returned section
// aliases the input; callers that retain it past the input's lifetime
// must copy.
func Bytes(b []byte) (sec, rest []byte, err error) {
	n, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("wire: %d-byte section, %d bytes left: %w", n, len(b), ErrTruncated)
	}
	return b[:n], b[n:], nil
}

// AppendString appends a length-prefixed string section.
//
//gocad:noalloc
func AppendString(b []byte, s string) []byte {
	b = AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// String consumes one length-prefixed string section (always a copy —
// strings are immutable).
func String(b []byte) (string, []byte, error) {
	sec, rest, err := Bytes(b)
	if err != nil {
		return "", nil, err
	}
	return string(sec), rest, nil
}

// AppendFloat64 appends the IEEE-754 bits of f, little-endian.
//
//gocad:noalloc
func AppendFloat64(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

// Float64 consumes one little-endian float64.
func Float64(b []byte) (float64, []byte, error) {
	if len(b) < 8 {
		return 0, nil, ErrTruncated
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b)), b[8:], nil
}

// AppendFloat64s appends a length-prefixed float64 vector.
//
//gocad:noalloc
func AppendFloat64s(b []byte, fs []float64) []byte {
	b = AppendUvarint(b, uint64(len(fs)))
	for _, f := range fs {
		b = AppendFloat64(b, f)
	}
	return b
}

// Float64s consumes a length-prefixed float64 vector. A nil slice is
// encoded and decoded as length zero.
func Float64s(b []byte) ([]float64, []byte, error) {
	n, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n*8 > uint64(len(b)) {
		return nil, nil, fmt.Errorf("wire: %d floats, %d bytes left: %w", n, len(b), ErrTruncated)
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out, b[n*8:], nil
}

// AppendStrings appends a length-prefixed vector of strings.
//
//gocad:noalloc
func AppendStrings(b []byte, ss []string) []byte {
	b = AppendUvarint(b, uint64(len(ss)))
	for _, s := range ss {
		b = AppendString(b, s)
	}
	return b
}

// Strings consumes a length-prefixed vector of strings. The element
// count is bounds-checked against the remaining input (each element
// needs at least its one-byte length prefix) before allocating.
func Strings(b []byte) ([]string, []byte, error) {
	n, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("wire: %d strings, %d bytes left: %w", n, len(b), ErrTruncated)
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]string, n)
	for i := range out {
		out[i], b, err = String(b)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, b, nil
}

// Bits are packed four per byte: the four-valued logic (0,1,X,Z) needs
// two bits per signal. The count prefix carries the exact length.

// AppendBits appends a length-prefixed packed bit vector.
//
//gocad:noalloc
func AppendBits(b []byte, bits []signal.Bit) []byte {
	b = AppendUvarint(b, uint64(len(bits)))
	var acc byte
	for i, bit := range bits {
		acc |= (byte(bit) & 0x3) << uint((i%4)*2)
		if i%4 == 3 {
			b = append(b, acc)
			acc = 0
		}
	}
	if len(bits)%4 != 0 {
		b = append(b, acc)
	}
	return b
}

// Bits consumes a length-prefixed packed bit vector.
func Bits(b []byte) ([]signal.Bit, []byte, error) {
	n, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	packed := (n + 3) / 4
	if packed > uint64(len(b)) {
		return nil, nil, fmt.Errorf("wire: %d bits need %d bytes, %d left: %w", n, packed, len(b), ErrTruncated)
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([]signal.Bit, n)
	for i := range out {
		out[i] = signal.Bit((b[i/4] >> uint((i%4)*2)) & 0x3)
	}
	return out, b[packed:], nil
}

// AppendPatterns appends a length-prefixed batch of bit patterns.
//
//gocad:noalloc
func AppendPatterns(b []byte, ps [][]signal.Bit) []byte {
	b = AppendUvarint(b, uint64(len(ps)))
	for _, p := range ps {
		b = AppendBits(b, p)
	}
	return b
}

// Patterns consumes a length-prefixed batch of bit patterns.
func Patterns(b []byte) ([][]signal.Bit, []byte, error) {
	n, b, err := Uvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > uint64(len(b)) {
		return nil, nil, fmt.Errorf("wire: %d patterns, %d bytes left: %w", n, len(b), ErrTruncated)
	}
	if n == 0 {
		return nil, b, nil
	}
	out := make([][]signal.Bit, n)
	for i := range out {
		out[i], b, err = Bits(b)
		if err != nil {
			return nil, nil, err
		}
	}
	return out, b, nil
}

// AppendWord appends a signal word as a packed bit vector.
//
//gocad:noalloc
func AppendWord(b []byte, w signal.Word) []byte {
	return AppendBits(b, w.Bits)
}

// Word consumes a signal word.
func Word(b []byte) (signal.Word, []byte, error) {
	bits, rest, err := Bits(b)
	if err != nil {
		return signal.Word{}, nil, err
	}
	return signal.Word{Bits: bits}, rest, nil
}

// AppendVarint appends v in zigzag signed varint encoding.
//
//gocad:noalloc
func AppendVarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

// Varint consumes one zigzag signed varint.
func Varint(b []byte) (int64, []byte, error) {
	v, n := binary.Varint(b)
	if n <= 0 {
		if n == 0 {
			return 0, nil, ErrTruncated
		}
		return 0, nil, errors.New("wire: varint overflows 64 bits")
	}
	return v, b[n:], nil
}

// AppendBool appends a bool as one byte (0 or 1).
//
//gocad:noalloc
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Bool consumes one boolean byte; values other than 0 and 1 are
// rejected so every valid encoding is canonical.
func Bool(b []byte) (bool, []byte, error) {
	if len(b) < 1 {
		return false, nil, ErrTruncated
	}
	switch b[0] {
	case 0:
		return false, b[1:], nil
	case 1:
		return true, b[1:], nil
	}
	return false, nil, fmt.Errorf("wire: boolean byte %#02x", b[0])
}
